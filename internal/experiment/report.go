package experiment

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable result with a caption, column headers and rows, the
// shape every paper table and figure reduces to.
type Table struct {
	Caption string
	Columns []string
	Rows    [][]string
	// Notes carries scale/substitution remarks printed under the table.
	Notes []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// WriteTo renders the table as aligned text.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	b.WriteString(t.Caption)
	b.WriteString("\n")
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		panic(err) // strings.Builder cannot fail
	}
	return b.String()
}

func fms(ms float64) string  { return fmt.Sprintf("%.3f", ms) }
func fint(v int) string      { return fmt.Sprintf("%d", v) }
func f64(v int64) string     { return fmt.Sprintf("%d", v) }
func fpct(v float64) string  { return fmt.Sprintf("%.1f%%", 100*v) }
func ffrac(v float64) string { return fmt.Sprintf("%.3f", v) }
