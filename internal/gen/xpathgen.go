// Package gen provides the two workload generators the evaluation needs:
// an XPath query generator in the style of Diao et al.'s generator (the
// paper's subscription workloads) and a DTD-driven XML document generator in
// the style of the IBM XML Generator (the paper's publication workloads).
// Both are deterministic for a given random source.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/dtd"
	"repro/internal/xpath"
)

// XPathGenerator produces random XPath expressions by walking a DTD's
// containment graph from the root. Its knobs mirror the ones the paper
// reports tuning: W, the probability of a "*" at a location step, and DO,
// the probability of a "//" operator at a location step, plus the maximum
// expression length (the paper uses 10).
type XPathGenerator struct {
	DTD *dtd.DTD
	// Wildcard (W) is the probability that a step's name test is "*".
	Wildcard float64
	// Descendant (DO) is the probability that a step is connected with "//";
	// the walk then skips one to three levels.
	Descendant float64
	// MaxLen bounds the number of location steps (default 10).
	MaxLen int
	// MinLen bounds the number of location steps from below (default 1).
	MinLen int
	// Relative is the probability of generating a relative expression,
	// which starts the walk at a random non-root element (default 0).
	Relative float64
	// Rand is the randomness source; it must be non-nil.
	Rand *rand.Rand
}

// NewXPathGenerator returns a generator with the paper's defaults.
func NewXPathGenerator(d *dtd.DTD, w, do float64, seed int64) *XPathGenerator {
	return &XPathGenerator{
		DTD:        d,
		Wildcard:   w,
		Descendant: do,
		MaxLen:     10,
		MinLen:     1,
		Rand:       rand.New(rand.NewSource(seed)),
	}
}

func (g *XPathGenerator) maxLen() int {
	if g.MaxLen <= 0 {
		return 10
	}
	return g.MaxLen
}

func (g *XPathGenerator) minLen() int {
	if g.MinLen <= 0 {
		return 1
	}
	return g.MinLen
}

// Generate produces one expression.
func (g *XPathGenerator) Generate() *xpath.XPE {
	x, _ := g.GenerateWithTrace()
	return x
}

// GenerateWithTrace produces one expression together with the concrete DTD
// element behind each location step (the walk the expression was derived
// from). Workload builders use the trace to derive DTD-consistent
// specialisations: narrowing a wildcard to its trace element, or extending
// the walk through real children, keeps the expression overlapping the
// producer's advertisements.
func (g *XPathGenerator) GenerateWithTrace() (*xpath.XPE, []string) {
	r := g.Rand
	x := &xpath.XPE{}
	var trace []string
	cur := g.DTD.Root
	if r.Float64() < g.Relative {
		x.Relative = true
		names := g.DTD.Names()
		cur = names[r.Intn(len(names))]
	}
	length := g.minLen() + r.Intn(g.maxLen()-g.minLen()+1)
	for i := 0; i < length; i++ {
		axis := xpath.Child
		if i > 0 {
			kids := g.DTD.Children(cur)
			if len(kids) == 0 {
				break
			}
			if r.Float64() < g.Descendant {
				axis = xpath.Descendant
				// Usually skip an intermediate level so the "//" is
				// meaningful; "//" with no skipped level is also legal.
				if r.Intn(4) > 0 {
					next := kids[r.Intn(len(kids))]
					if grand := g.DTD.Children(next); len(grand) > 0 {
						cur, kids = next, grand
					}
				}
			}
			cur = kids[r.Intn(len(kids))]
		}
		name := cur
		if r.Float64() < g.Wildcard {
			name = xpath.Wildcard
		}
		x.Steps = append(x.Steps, xpath.Step{Axis: axis, Name: name})
		trace = append(trace, cur)
	}
	if len(x.Steps) == 0 {
		x.Steps = append(x.Steps, xpath.Step{Axis: xpath.Child, Name: g.DTD.Root})
		trace = append(trace, g.DTD.Root)
	}
	return x, trace
}

// GenerateDistinct produces n pairwise-distinct expressions (the paper's
// query workloads are distinct). It fails if the space is too small to
// find n distinct expressions within a bounded number of attempts.
func (g *XPathGenerator) GenerateDistinct(n int) ([]*xpath.XPE, error) {
	seen := make(map[string]bool, n)
	out := make([]*xpath.XPE, 0, n)
	attempts := 0
	for len(out) < n {
		attempts++
		if attempts > 200*n+10000 {
			return nil, fmt.Errorf("gen: could not find %d distinct XPEs (found %d)", n, len(out))
		}
		x := g.Generate()
		key := x.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, x)
	}
	return out, nil
}
