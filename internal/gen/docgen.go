package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dtd"
	"repro/internal/xmldoc"
)

// DocGenerator produces XML documents conforming to a DTD, in the style of
// the IBM XML Generator the paper uses: repetition counts for "*"/"+"
// particles are random, the number of levels is bounded (the paper sets the
// maximum to 10, matching the maximum XPE length), and the amount of
// character data is tunable so documents of a target byte size can be made.
type DocGenerator struct {
	DTD *dtd.DTD
	// MaxLevels is the soft depth bound (default 10). Elements whose
	// content model requires children may exceed it by the few levels their
	// cheapest completion needs.
	MaxLevels int
	// AvgRepeat is the mean number of extra occurrences generated for "*"
	// and "+" particles (default 1).
	AvgRepeat float64
	// MixedProb is the probability that each admissible child of a
	// mixed-content element appears (default 0.3).
	MixedProb float64
	// TextWords is the mean number of words of character data per
	// text-capable element (default 4).
	TextWords int
	// Rand is the randomness source; it must be non-nil.
	Rand *rand.Rand
	// MaxElements caps the element count of one document (default 300000):
	// repetition counts multiply across levels, and a runaway draw must
	// degrade to minimal completions instead of exhausting memory.
	MaxElements int

	need  map[string]int // lazily computed minimal completion depths
	nodes int            // elements generated in the current document
}

// NewDocGenerator returns a generator with the paper's defaults.
func NewDocGenerator(d *dtd.DTD, seed int64) *DocGenerator {
	return &DocGenerator{
		DTD:       d,
		MaxLevels: 10,
		AvgRepeat: 1,
		MixedProb: 0.3,
		TextWords: 4,
		Rand:      rand.New(rand.NewSource(seed)),
	}
}

func (g *DocGenerator) maxLevels() int {
	if g.MaxLevels <= 0 {
		return 10
	}
	return g.MaxLevels
}

// Generate produces one document.
func (g *DocGenerator) Generate() *xmldoc.Document {
	if g.need == nil {
		g.need = g.DTD.MinDepthBelow()
	}
	g.nodes = 0
	root := g.genElement(g.DTD.Root, 1)
	return &xmldoc.Document{Root: root}
}

// GenerateSized produces a document whose serialised size is close to
// targetBytes (within a few percent). Document size reacts superlinearly to
// the repetition knob — counts multiply across levels — so scale search
// alone cannot hit a byte target; instead the element structure is generated
// at a scale that undershoots slightly and the character data is then padded
// (or trimmed) to the target. The paper's workloads only use document size
// as a transfer/parse cost knob, which text volume captures.
func (g *DocGenerator) GenerateSized(targetBytes int) (*xmldoc.Document, error) {
	if targetBytes <= 0 {
		return nil, fmt.Errorf("gen: target size must be positive")
	}
	savedRepeat := g.AvgRepeat
	defer func() { g.AvgRepeat = savedRepeat }()

	var best *xmldoc.Document
	bestErr := 1 << 60
	scale := 1.0
	for attempt := 0; attempt < 16; attempt++ {
		g.AvgRepeat = savedRepeat * scale
		doc := g.Generate()
		adjustTextSize(doc, targetBytes, g)
		size := doc.Size()
		diff := size - targetBytes
		if diff < 0 {
			diff = -diff
		}
		if diff < bestErr {
			best, bestErr = doc, diff
		}
		if float64(diff) <= 0.05*float64(targetBytes) {
			return doc, nil
		}
		if size > targetBytes {
			// Even with all text removed the structure is too large.
			scale *= 0.5
		} else {
			scale *= 1.4
		}
		scale = math.Min(math.Max(scale, 0.05), 8)
	}
	return best, nil
}

// adjustTextSize pads or trims the document's character data toward the
// byte target.
func adjustTextSize(doc *xmldoc.Document, target int, g *DocGenerator) {
	var textNodes []*xmldoc.Elem
	var collect func(e *xmldoc.Elem)
	collect = func(e *xmldoc.Elem) {
		if e.Text != "" {
			textNodes = append(textNodes, e)
		}
		for _, c := range e.Children {
			collect(c)
		}
	}
	collect(doc.Root)
	delta := target - doc.Size()
	switch {
	case delta > 0 && len(textNodes) > 0:
		// Distribute the missing bytes across text nodes.
		per := delta/len(textNodes) + 1
		for _, e := range textNodes {
			if delta <= 0 {
				break
			}
			chunk := per
			if chunk > delta {
				chunk = delta
			}
			e.Text += " " + padText(g, chunk)
			delta -= chunk + 1
		}
	case delta < 0:
		// Trim text until the document fits (structure may still exceed the
		// target; the caller then regenerates smaller).
		for i := len(textNodes) - 1; i >= 0 && delta < 0; i-- {
			e := textNodes[i]
			cut := -delta
			if cut >= len(e.Text) {
				delta += len(e.Text)
				e.Text = ""
			} else {
				e.Text = e.Text[:len(e.Text)-cut]
				delta = 0
			}
		}
	}
}

// padText builds roughly n bytes of filler words.
func padText(g *DocGenerator, n int) string {
	out := make([]byte, 0, n+8)
	for len(out) < n {
		if len(out) > 0 {
			out = append(out, ' ')
		}
		out = append(out, g.word()...)
	}
	return string(out[:n])
}

// overBudget reports whether the current document has hit its element cap;
// optional content is suppressed past it.
func (g *DocGenerator) overBudget() bool {
	cap := g.MaxElements
	if cap <= 0 {
		cap = 300000
	}
	return g.nodes >= cap
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (g *DocGenerator) genElement(name string, level int) *xmldoc.Elem {
	g.nodes++
	el := &xmldoc.Elem{Name: name}
	decl := g.DTD.Element(name)
	if decl == nil {
		return el
	}
	for _, a := range decl.Attrs {
		if a.Default == "#REQUIRED" {
			el.Attrs = append(el.Attrs, xmldoc.Attr{Name: a.Name, Value: g.word()})
		}
	}
	switch decl.Content {
	case dtd.EmptyContent:
		// No children, no text.
	case dtd.MixedContent:
		el.Text = g.text()
		for _, c := range decl.MixedNames {
			if !g.fits(c, level) || g.overBudget() {
				continue
			}
			for g.Rand.Float64() < g.mixedProb() {
				el.Children = append(el.Children, g.genElement(c, level+1))
				if g.Rand.Float64() > 0.4 {
					break
				}
			}
		}
	case dtd.AnyContent:
		el.Text = g.text()
		names := g.DTD.Names()
		for tries := 0; tries < 3; tries++ {
			c := names[g.Rand.Intn(len(names))]
			if g.Rand.Float64() < g.mixedProb() && g.fits(c, level) {
				el.Children = append(el.Children, g.genElement(c, level+1))
			}
		}
	default:
		el.Children = g.genParticle(decl.Model, level)
		if len(el.Children) == 0 {
			el.Text = g.text()
		}
	}
	return el
}

// fits reports whether descending into child c at the given level respects
// the depth budget.
func (g *DocGenerator) fits(c string, level int) bool {
	n := g.need[c]
	return n < dtd.Unbounded && level+1+n <= g.maxLevels()
}

func (g *DocGenerator) genParticle(p *dtd.Particle, level int) []*xmldoc.Elem {
	if p == nil {
		return nil
	}
	count := g.occurrences(p, level)
	var out []*xmldoc.Elem
	for i := 0; i < count; i++ {
		switch p.Kind {
		case dtd.NameParticle:
			out = append(out, g.genElement(p.Name, level+1))
		case dtd.SeqParticle:
			for _, c := range p.Children {
				out = append(out, g.genParticle(c, level)...)
			}
		case dtd.ChoiceParticle:
			if c := g.chooseBranch(p, level); c != nil {
				out = append(out, g.genParticle(c, level)...)
			}
		}
	}
	return out
}

// occurrences draws how many times a particle is instantiated, honouring its
// modifier and the depth budget (optional particles that do not fit are
// dropped; required ones proceed with their cheapest completion).
func (g *DocGenerator) occurrences(p *dtd.Particle, level int) int {
	fits := g.particleFits(p, level) && !g.overBudget()
	switch p.Occ {
	case dtd.Optional:
		if !fits || g.Rand.Float64() < 0.4 {
			return 0
		}
		return 1
	case dtd.ZeroOrMore:
		if !fits {
			return 0
		}
		return g.geometric()
	case dtd.OneOrMore:
		if !fits {
			return 1 // required: overshoot minimally
		}
		return 1 + g.geometric()
	default:
		return 1
	}
}

// geometric draws a non-negative count with mean AvgRepeat.
func (g *DocGenerator) geometric() int {
	mean := g.AvgRepeat
	if mean <= 0 {
		return 0
	}
	p := 1 / (1 + mean)
	n := 0
	for g.Rand.Float64() > p {
		n++
		if n > 200 {
			break
		}
	}
	return n
}

// particleFits reports whether one instantiation of p can respect the depth
// budget.
func (g *DocGenerator) particleFits(p *dtd.Particle, level int) bool {
	switch p.Kind {
	case dtd.NameParticle:
		return g.fits(p.Name, level)
	case dtd.ChoiceParticle:
		for _, c := range p.Children {
			if g.particleFits(c, level) {
				return true
			}
		}
		return false
	default:
		for _, c := range p.Children {
			if c.Occ == dtd.One || c.Occ == dtd.OneOrMore {
				if !g.particleFits(c, level) {
					return false
				}
			}
		}
		return true
	}
}

// chooseBranch picks a random branch of a choice that fits the depth budget,
// falling back to the cheapest branch when none does.
func (g *DocGenerator) chooseBranch(p *dtd.Particle, level int) *dtd.Particle {
	var viable []*dtd.Particle
	for _, c := range p.Children {
		if g.particleFits(c, level) {
			viable = append(viable, c)
		}
	}
	if len(viable) > 0 {
		return viable[g.Rand.Intn(len(viable))]
	}
	// Required choice with no fitting branch: take the cheapest completion.
	var best *dtd.Particle
	bestNeed := dtd.Unbounded + 1
	for _, c := range p.Children {
		n := g.branchNeed(c)
		if n < bestNeed {
			best, bestNeed = c, n
		}
	}
	return best
}

func (g *DocGenerator) branchNeed(p *dtd.Particle) int {
	switch p.Kind {
	case dtd.NameParticle:
		return g.need[p.Name]
	case dtd.ChoiceParticle:
		best := dtd.Unbounded
		for _, c := range p.Children {
			if n := g.branchNeed(c); n < best {
				best = n
			}
		}
		return best
	default:
		worst := 0
		for _, c := range p.Children {
			if n := g.branchNeed(c); n > worst {
				worst = n
			}
		}
		return worst
	}
}

func (g *DocGenerator) mixedProb() float64 {
	if g.MixedProb <= 0 {
		return 0.3
	}
	return g.MixedProb
}

var lexicon = []string{
	"market", "report", "update", "global", "index", "energy", "health",
	"policy", "sequence", "protein", "domain", "signal", "release", "quarter",
	"analysis", "growth", "network", "system", "region", "summary",
}

func (g *DocGenerator) word() string {
	return lexicon[g.Rand.Intn(len(lexicon))]
}

func (g *DocGenerator) text() string {
	words := g.TextWords
	if words <= 0 {
		words = 4
	}
	n := 1 + g.Rand.Intn(2*words)
	out := make([]byte, 0, n*8)
	for i := 0; i < n; i++ {
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, g.word()...)
	}
	return string(out)
}
