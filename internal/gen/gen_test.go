package gen

import (
	"math/rand"
	"testing"

	"repro/internal/advert"
	"repro/internal/dtd"
	"repro/internal/dtddata"
	"repro/internal/xpath"
)

func TestXPathGeneratorBasics(t *testing.T) {
	g := NewXPathGenerator(dtddata.PSD(), 0.2, 0.2, 1)
	for i := 0; i < 2000; i++ {
		x := g.Generate()
		if x.Len() == 0 || x.Len() > 10 {
			t.Fatalf("length %d out of range for %s", x.Len(), x)
		}
		// Every generated expression must re-parse.
		y, err := xpath.Parse(x.String())
		if err != nil {
			t.Fatalf("generated %q does not parse: %v", x, err)
		}
		if !x.Equal(y) {
			t.Fatalf("round trip changed %q", x)
		}
	}
}

func TestXPathGeneratorProbabilities(t *testing.T) {
	g := NewXPathGenerator(dtddata.NITF(), 0.5, 0.3, 2)
	var steps, nonFirst, wilds, descs int
	for i := 0; i < 3000; i++ {
		x := g.Generate()
		for j, st := range x.Steps {
			steps++
			if st.IsWildcard() {
				wilds++
			}
			if j > 0 {
				nonFirst++
				if st.Axis == xpath.Descendant {
					descs++
				}
			}
		}
	}
	wr := float64(wilds) / float64(steps)
	if wr < 0.45 || wr > 0.55 {
		t.Errorf("wildcard rate = %.2f, want ~0.5", wr)
	}
	dr := float64(descs) / float64(nonFirst)
	if dr < 0.25 || dr > 0.35 {
		t.Errorf("descendant rate = %.2f of non-first steps, want ~0.3", dr)
	}
}

func TestXPathGeneratorDistinct(t *testing.T) {
	g := NewXPathGenerator(dtddata.NITF(), 0.2, 0.2, 3)
	xs, err := g.GenerateDistinct(5000)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, x := range xs {
		if seen[x.Key()] {
			t.Fatalf("duplicate %s", x)
		}
		seen[x.Key()] = true
	}
}

func TestXPathGeneratorDeterministic(t *testing.T) {
	a := NewXPathGenerator(dtddata.PSD(), 0.3, 0.2, 7)
	b := NewXPathGenerator(dtddata.PSD(), 0.3, 0.2, 7)
	for i := 0; i < 500; i++ {
		if !a.Generate().Equal(b.Generate()) {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestXPathGeneratorDistinctExhaustion(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT a (b)><!ELEMENT b EMPTY>`)
	g := NewXPathGenerator(d, 0, 0, 1)
	g.MaxLen = 2
	if _, err := g.GenerateDistinct(100); err == nil {
		t.Error("expected exhaustion error for a tiny expression space")
	}
}

func TestDocGeneratorConformance(t *testing.T) {
	for _, tc := range []struct {
		name string
		d    *dtd.DTD
	}{{"psd", dtddata.PSD()}, {"nitf", dtddata.NITF()}} {
		t.Run(tc.name, func(t *testing.T) {
			g := NewDocGenerator(tc.d, 4)
			for i := 0; i < 50; i++ {
				doc := g.Generate()
				if doc.Root.Name != tc.d.Root {
					t.Fatalf("root = %s", doc.Root.Name)
				}
				if depth := doc.Depth(); depth > 12 {
					t.Fatalf("depth %d exceeds budget+slack", depth)
				}
				// Structural conformance: every child relation must be
				// admitted by the DTD.
				var check func(parentKids map[string]bool, name string, kids []string) // placeholder
				_ = check
				verifyContainment(t, tc.d, doc.Root.Name, doc)
			}
		})
	}
}

func verifyContainment(t *testing.T, d *dtd.DTD, root string, doc interface{ Paths() [][]string }) {
	t.Helper()
	for _, p := range doc.Paths() {
		for i := 0; i+1 < len(p); i++ {
			ok := false
			for _, c := range d.Children(p[i]) {
				if c == p[i+1] {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("path %v: %s is not an admissible child of %s", p, p[i+1], p[i])
			}
		}
		last := p[len(p)-1]
		if !d.CanBeChildless(last) {
			t.Fatalf("path %v ends at %s, which cannot be childless", p, last)
		}
	}
}

// TestDocPathsMatchAdvertisements is the end-to-end soundness property:
// every root-to-leaf path of every generated document matches at least one
// advertisement generated from the same DTD.
func TestDocPathsMatchAdvertisements(t *testing.T) {
	for _, tc := range []struct {
		name string
		d    *dtd.DTD
	}{{"psd", dtddata.PSD()}, {"nitf", dtddata.NITF()}} {
		t.Run(tc.name, func(t *testing.T) {
			advs, err := advert.Generate(tc.d)
			if err != nil {
				t.Fatal(err)
			}
			g := NewDocGenerator(tc.d, 5)
			g.AvgRepeat = 1.5
			for i := 0; i < 40; i++ {
				doc := g.Generate()
			paths:
				for _, p := range doc.Paths() {
					for _, a := range advs {
						if a.MatchesPath(p) {
							continue paths
						}
					}
					t.Fatalf("document path %v matches no advertisement", p)
				}
			}
		})
	}
}

func TestGenerateSized(t *testing.T) {
	g := NewDocGenerator(dtddata.PSD(), 6)
	for _, target := range []int{2048, 10240, 20480, 40960} {
		doc, err := g.GenerateSized(target)
		if err != nil {
			t.Fatal(err)
		}
		size := doc.Size()
		lo, hi := target*9/10, target*11/10
		if size < lo || size > hi {
			t.Errorf("target %d: size %d outside [%d, %d]", target, size, lo, hi)
		}
	}
}

func TestGenerateSizedNITF(t *testing.T) {
	g := NewDocGenerator(dtddata.NITF(), 8)
	doc, err := g.GenerateSized(40960)
	if err != nil {
		t.Fatal(err)
	}
	if size := doc.Size(); size < 35000 || size > 47000 {
		t.Errorf("NITF 40K target produced %d bytes", size)
	}
}

func TestDocGeneratorDeterministic(t *testing.T) {
	a := NewDocGenerator(dtddata.PSD(), 9)
	b := NewDocGenerator(dtddata.PSD(), 9)
	for i := 0; i < 10; i++ {
		if string(a.Generate().Marshal()) != string(b.Generate().Marshal()) {
			t.Fatal("same seed produced different documents")
		}
	}
}

func TestGeometricMean(t *testing.T) {
	g := &DocGenerator{AvgRepeat: 3, Rand: rand.New(rand.NewSource(1))}
	total := 0
	const n = 20000
	for i := 0; i < n; i++ {
		total += g.geometric()
	}
	mean := float64(total) / n
	if mean < 2.6 || mean > 3.4 {
		t.Errorf("geometric mean = %.2f, want ~3", mean)
	}
}

func BenchmarkXPathGenerate(b *testing.B) {
	g := NewXPathGenerator(dtddata.NITF(), 0.2, 0.2, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Generate()
	}
}

func BenchmarkDocGenerate(b *testing.B) {
	g := NewDocGenerator(dtddata.NITF(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Generate()
	}
}
