package gen

import (
	"testing"

	"repro/internal/dtddata"
)

// TestGenerateWithTraceConsistency: the trace has one concrete element per
// step, each step's test admits its trace element, and the expression
// matches the trace as a path (descendant steps allow the zero-gap case).
func TestGenerateWithTraceConsistency(t *testing.T) {
	g := NewXPathGenerator(dtddata.NITF(), 0.4, 0.3, 17)
	g.MinLen = 2
	for i := 0; i < 3000; i++ {
		x, trace := g.GenerateWithTrace()
		if len(trace) != x.Len() {
			t.Fatalf("trace length %d != steps %d for %s", len(trace), x.Len(), x)
		}
		for j, st := range x.Steps {
			if !st.IsWildcard() && st.Name != trace[j] {
				t.Fatalf("step %d of %s is %q but trace says %q", j, x, st.Name, trace[j])
			}
		}
		if !x.Relative && !x.MatchesPath(trace) {
			t.Fatalf("%s does not match its own trace %v", x, trace)
		}
	}
}

// TestTraceElementsAreDeclared: every trace element exists in the DTD.
func TestTraceElementsAreDeclared(t *testing.T) {
	d := dtddata.PSD()
	g := NewXPathGenerator(d, 0.3, 0.2, 18)
	for i := 0; i < 1000; i++ {
		_, trace := g.GenerateWithTrace()
		for _, el := range trace {
			if d.Element(el) == nil {
				t.Fatalf("trace element %q not declared", el)
			}
		}
	}
}
