package advert

import (
	"fmt"

	"repro/internal/dtd"
)

// DefaultGenerateLimit bounds the number of advertisements Generate will
// produce before giving up; it guards against combinatorially explosive
// DTDs.
const DefaultGenerateLimit = 500000

// Generate derives the complete advertisement set from a DTD: one
// advertisement per root-to-leaf path pattern of documents conforming to the
// DTD. Non-recursive DTDs yield plain path advertisements. Recursion is
// detected through back-edges of the containment-graph DFS; a back-edge
// wraps the cycle's element run into a one-or-more "(...)+" group, nested
// back-edges produce embedded groups, and disjoint cycles along one path
// produce series groups — the paper's three recursive-advertisement classes.
//
// An advertisement ends at every element that can be childless in a
// conforming document (EMPTY or mixed content, or a nullable content model),
// because such an element can terminate a root-to-leaf path.
//
// The generator is sound for DTDs whose cycles are simple and entered only
// at their head, which the embedded corpora satisfy; soundness (every
// document path matches at least one advertisement) is verified by property
// tests in package gen against randomly generated documents.
func Generate(d *dtd.DTD) ([]*Advertisement, error) {
	return GenerateLimited(d, DefaultGenerateLimit)
}

// GenerateLimited is Generate with an explicit output-size cap.
func GenerateLimited(d *dtd.DTD, limit int) ([]*Advertisement, error) {
	if d.Element(d.Root) == nil {
		return nil, fmt.Errorf("advert: DTD has no root element declaration")
	}
	g := &generator{
		d:       d,
		onStack: make(map[string]int),
		seen:    make(map[string]bool),
		limit:   limit,
	}
	if err := g.visit(d.Root); err != nil {
		return nil, err
	}
	return g.results, nil
}

type generator struct {
	d       *dtd.DTD
	items   []Item         // the open path under construction
	onStack map[string]int // ancestor element -> index into items; -1 while wrapped
	results []*Advertisement
	seen    map[string]bool
	limit   int
}

// errLimit is the sentinel for exceeding the advertisement cap.
var errLimit = fmt.Errorf("advert: advertisement limit exceeded")

func (g *generator) emit() error {
	adv := &Advertisement{Items: cloneItems(g.items)}
	key := adv.Key()
	if g.seen[key] {
		return nil
	}
	if len(g.results) >= g.limit {
		return fmt.Errorf("%w (%d)", errLimit, g.limit)
	}
	g.seen[key] = true
	// Compile eagerly only for advertisements actually kept; duplicates and
	// over-limit candidates never pay for an automaton.
	g.results = append(g.results, compiled(adv))
	return nil
}

// visit explores element name as the next path component.
func (g *generator) visit(name string) error {
	idx := len(g.items)
	g.items = append(g.items, Sym(name))
	g.onStack[name] = idx
	defer func() {
		delete(g.onStack, name)
		g.items = g.items[:idx]
	}()

	if g.d.CanBeChildless(name) {
		if err := g.emit(); err != nil {
			return err
		}
	}
	for _, c := range g.d.Children(name) {
		if err := g.descend(c); err != nil {
			return err
		}
	}
	return nil
}

// descend continues path construction into child element c: a fresh element
// is visited, a back-edge to an ancestor wraps the cycle lap into a group,
// and an ancestor whose symbol is already inside a wrapped group (masked,
// index -1) is not pumped again.
func (g *generator) descend(c string) error {
	pos, on := g.onStack[c]
	switch {
	case on && pos >= 0:
		return g.handleBackEdge(pos)
	case on:
		return nil
	default:
		return g.visit(c)
	}
}

// handleBackEdge is called when the current element (the last of g.items)
// has a child that is already on the path at item index pos. The run
// items[pos:] is one full lap of a cycle; the grouped advertisement
// (lap)+ covers one or more laps. The method emits and explores every
// continuation of the pumped pattern:
//
//   - an exit taken right after a complete lap (a child of the lap's last
//     element other than the cycle head), and
//   - partial re-walks of the lap followed by an exit from an interior
//     element.
func (g *generator) handleBackEdge(pos int) error {
	lap := cloneItems(g.items[pos:])
	saved := g.items
	g.items = append(append([]Item{}, g.items[:pos]...), Item{Group: lap})

	// While exploring the pumped configuration, ancestors whose symbols were
	// swallowed by the group must not be wrapped again: their recorded item
	// indices are stale.
	var masked []string
	for el, p := range g.onStack {
		if p >= pos {
			g.onStack[el] = -1
			masked = append(masked, el)
		}
	}
	defer func() {
		g.items = saved
		for _, el := range masked {
			// All masked elements are still on the path frames below us;
			// restore their true indices from the saved layout.
			g.onStack[el] = indexOfSym(saved, el)
		}
	}()

	// The expansion of the group ends at the lap's last element; a document
	// may end there if that element can be childless.
	last := lastElement(lap)
	if last != "" && g.d.CanBeChildless(last) {
		if err := g.emit(); err != nil {
			return err
		}
	}
	// Exits after a complete lap. A nested back-edge found here wraps the
	// pumped configuration again, which is where embedded-recursive
	// advertisements come from.
	head := headElement(lap)
	if last != "" {
		for _, x := range g.d.Children(last) {
			if x == head {
				continue // taking the back-edge again is the group itself
			}
			if err := g.descend(x); err != nil {
				return err
			}
		}
	}
	// Partial re-walks: after k full laps the document may walk a strict
	// prefix of the lap again and then diverge.
	return g.partialLaps(lap)
}

// partialLaps appends lap[0..m] for every strict prefix and explores exits
// from the prefix's last element.
func (g *generator) partialLaps(lap []Item) error {
	for m := 0; m < len(lap)-1; m++ {
		g.items = append(g.items, lap[m])
		el := itemElement(lap[m])
		if el == "" {
			continue // divergence inside a nested group is not re-walked
		}
		if g.d.CanBeChildless(el) {
			if err := g.emit(); err != nil {
				return err
			}
		}
		for _, x := range g.d.Children(el) {
			if x == headElement(lap[m+1:]) {
				continue // continuing the lap is covered by longer prefixes
			}
			if err := g.descend(x); err != nil {
				return err
			}
		}
	}
	g.items = g.items[:len(g.items)-(len(lap)-1)]
	return nil
}

// itemElement returns the element a path position corresponds to: the name
// of a symbol item, or the single element of a self-loop group. Nested
// multi-element groups have no single representative and yield "".
func itemElement(it Item) string {
	if !it.IsGroup() {
		return it.Name
	}
	if len(it.Group) == 1 && !it.Group[0].IsGroup() {
		return it.Group[0].Name
	}
	return ""
}

// headElement returns the first element of an item run's expansion.
func headElement(seq []Item) string {
	if len(seq) == 0 {
		return ""
	}
	if seq[0].IsGroup() {
		return headElement(seq[0].Group)
	}
	return seq[0].Name
}

// lastElement returns the final element of an item run's expansion. Every
// expansion of a group ends with the group body's last element.
func lastElement(seq []Item) string {
	if len(seq) == 0 {
		return ""
	}
	it := seq[len(seq)-1]
	if it.IsGroup() {
		return lastElement(it.Group)
	}
	return it.Name
}

// indexOfSym finds the item index of element el in an open-path layout,
// looking through symbols only; -1 if the element is inside a group.
func indexOfSym(items []Item, el string) int {
	for i, it := range items {
		if !it.IsGroup() && it.Name == el {
			return i
		}
	}
	return -1
}
