package advert

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/xpath"
)

// randomAdvFrom builds a random advertisement (possibly with nested groups)
// from a seed-derived source.
func randomAdvFrom(r *rand.Rand) *Advertisement {
	alphabet := []string{"a", "b", "c", xpath.Wildcard}
	var build func(depth, n int) []Item
	build = func(depth, n int) []Item {
		var items []Item
		for i := 0; i < n; i++ {
			if depth < 2 && r.Intn(4) == 0 {
				items = append(items, Item{Group: build(depth+1, 1+r.Intn(2))})
			} else {
				items = append(items, Sym(alphabet[r.Intn(len(alphabet))]))
			}
		}
		return items
	}
	return &Advertisement{Items: build(0, 1+r.Intn(4))}
}

// TestQuickAdvParseRoundTrip: String and Parse are inverses for arbitrary
// advertisements.
func TestQuickAdvParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomAdvFrom(r)
		b, err := Parse(a.String())
		return err == nil && a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickExpansionsMatchPath: every enumerated expansion of an
// advertisement is accepted by its own path matcher, and expansions respect
// the length bound.
func TestQuickExpansionsMatchPath(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomAdvFrom(r)
		ok := true
		count := 0
		a.Expansions(a.MinLen()+4, func(w []string) bool {
			count++
			if len(w) > a.MinLen()+4 || !a.MatchesPath(w) {
				ok = false
				return false
			}
			return count < 200
		})
		return ok && count > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestQuickMinLenIsShortestExpansion: no expansion is shorter than MinLen,
// and an expansion of exactly MinLen exists.
func TestQuickMinLenIsShortestExpansion(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomAdvFrom(r)
		min := a.MinLen()
		sawMin := false
		ok := true
		a.Expansions(min+3, func(w []string) bool {
			if len(w) < min {
				ok = false
				return false
			}
			if len(w) == min {
				sawMin = true
			}
			return true
		})
		return ok && sawMin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
