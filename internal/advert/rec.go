package advert

import (
	"repro/internal/xpath"
)

// SplitSimple decomposes a simple-recursive advertisement a1(a2)+a3 into its
// three non-recursive parts. ok is false if the advertisement is not
// simple-recursive.
func (a *Advertisement) SplitSimple() (a1, a2, a3 []string, ok bool) {
	if a.Classify() != SimpleRecursive {
		return nil, nil, nil, false
	}
	i := 0
	for ; !a.Items[i].IsGroup(); i++ {
		a1 = append(a1, a.Items[i].Name)
	}
	for _, it := range a.Items[i].Group {
		a2 = append(a2, it.Name)
	}
	for _, it := range a.Items[i+1:] {
		a3 = append(a3, it.Name)
	}
	return a1, a2, a3, true
}

// AbsExprAndSimRecAdv is the paper's Figure 3 algorithm: matching an
// absolute simple XPE against a simple-recursive advertisement a1(a2)+a3.
// It enumerates the number of repetitions of the recursive pattern that the
// subscription's length admits and checks each resulting non-recursive
// advertisement, which is the strategy Figure 3 implements with its q..p
// loop. Complexity O(|s|^2) as stated in the paper.
func AbsExprAndSimRecAdv(a1, a2, a3 []string, s *xpath.XPE) bool {
	if len(a2) == 0 {
		return false
	}
	base := append(append([]string{}, a1...), a2...)
	if s.Len() <= len(base) {
		// Line 1: one repetition suffices to be at least as long as s.
		return AbsExprAndAdv(base, s)
	}
	// Lines 4-6: bound the repetition count by the subscription's length; one
	// extra repetition beyond covering |s| cannot change the outcome because
	// positions past |s| are unconstrained.
	rmax := (s.Len()-len(a1))/len(a2) + 1
	expansion := append([]string{}, a1...)
	for r := 1; r <= rmax; r++ {
		expansion = append(expansion, a2...)
		full := append(append([]string{}, expansion...), a3...)
		if AbsExprAndAdv(full, s) {
			return true
		}
	}
	return false
}

// OverlapsSimRec matches any supported subscription against a
// simple-recursive advertisement by the paper's expansion strategy,
// generalising Figure 3 beyond absolute simple XPEs by reusing the
// appropriate non-recursive matcher per expansion.
func OverlapsSimRec(a *Advertisement, s *xpath.XPE) bool {
	a1, a2, a3, ok := a.SplitSimple()
	if !ok {
		return false
	}
	rmax := (s.Len()-len(a1))/len(a2) + 1
	if rmax < 1 {
		rmax = 1
	}
	expansion := append([]string{}, a1...)
	for r := 1; r <= rmax; r++ {
		expansion = append(expansion, a2...)
		full := append(append([]string{}, expansion...), a3...)
		if MatchesNonRecursive(full, s) {
			return true
		}
	}
	return false
}

// Expansions enumerates expansion words of the advertisement (each group
// repeated one or more times, with independent counts per iteration for
// nested groups) whose length does not exceed maxLen, invoking fn for each.
// fn returns false to stop the enumeration. It serves as a brute-force
// oracle in tests and for imperfect-merging degree estimation.
func (a *Advertisement) Expansions(maxLen int, fn func([]string) bool) {
	word := make([]string, 0, maxLen)
	stopped := false
	// gen expands the item sequence seq starting at index k, then calls cont.
	var gen func(seq []Item, k int, cont func())
	gen = func(seq []Item, k int, cont func()) {
		if stopped {
			return
		}
		if k == len(seq) {
			cont()
			return
		}
		it := seq[k]
		if !it.IsGroup() {
			if len(word) >= maxLen {
				return
			}
			word = append(word, it.Name)
			gen(seq, k+1, cont)
			word = word[:len(word)-1]
			return
		}
		// One or more iterations of it.Group, then the rest of seq.
		var iter func()
		iter = func() {
			if stopped {
				return
			}
			gen(it.Group, 0, func() {
				// After a complete iteration: continue with seq...
				gen(seq, k+1, cont)
				// ...or another iteration (word length strictly grew, so
				// this terminates at maxLen).
				iter()
			})
		}
		iter()
	}
	gen(a.Items, 0, func() {
		w := make([]string, len(word))
		copy(w, word)
		if !fn(w) {
			stopped = true
		}
	})
}
