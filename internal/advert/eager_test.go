package advert

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/symtab"
)

// TestMatchesPathDoesNotGrowInterner pins the hot-path contract: matching a
// foreign publication path against a constructor-built advertisement must
// not intern the path's element names — the path is converted with Lookup
// and unknown names only ever match wildcard edges.
func TestMatchesPathDoesNotGrowInterner(t *testing.T) {
	a := MustParse("/eager-root/*/eager-leaf")
	// Construction compiled the automaton, so the advertisement's own names
	// are already interned.
	for _, name := range []string{"eager-root", "eager-leaf"} {
		if _, ok := symtab.Lookup(name); !ok {
			t.Fatalf("construction must intern edge name %q", name)
		}
	}
	before := symtab.Default.Len()
	foreign := []string{"eager-root", "foreign-elem-1", "eager-leaf"}
	if !a.MatchesPath(foreign) {
		t.Fatal("wildcard must match the foreign element")
	}
	if a.MatchesPath([]string{"foreign-elem-2", "foreign-elem-3", "eager-leaf"}) {
		t.Fatal("foreign element must not match a concrete edge")
	}
	if after := symtab.Default.Len(); after != before {
		t.Fatalf("MatchesPath grew the interner: %d -> %d", before, after)
	}
	if _, ok := symtab.Lookup("foreign-elem-1"); ok {
		t.Fatal("foreign path element was interned")
	}
}

// TestEagerCompileAllConstructors verifies every constructor ships a
// pre-compiled automaton (the publish path never compiles lazily for them).
func TestEagerCompileAllConstructors(t *testing.T) {
	cases := map[string]*Advertisement{
		"Parse":            MustParse("/a(/b/c)+/d"),
		"NewAdvertisement": NewAdvertisement(Sym("a"), Rep(Sym("b"))),
		"FromPath":         FromPath("a", "b", "c"),
		"Clone":            MustParse("/a/b").Clone(),
	}
	for name, a := range cases {
		if a.nfaCached.Load() == nil {
			t.Errorf("%s: automaton not compiled at construction", name)
		}
	}
}

// TestHandBuiltLiteralCompilesAtomically races first matches on a hand-built
// advertisement: the CAS publication must hand every goroutine a fully built
// automaton with consistent results.
func TestHandBuiltLiteralCompilesAtomically(t *testing.T) {
	for round := 0; round < 20; round++ {
		a := &Advertisement{Items: []Item{Sym("hb-a"), Rep(Sym("hb-b")), Sym("hb-c")}}
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if !a.MatchesPath([]string{"hb-a", "hb-b", "hb-b", "hb-c"}) {
					errs <- fmt.Errorf("expansion must match")
				}
				if a.MatchesPath([]string{"hb-a", "hb-c"}) {
					errs <- fmt.Errorf("group must repeat at least once")
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
}
