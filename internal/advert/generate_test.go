package advert

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/dtd"
	"repro/internal/dtddata"
	"repro/internal/xpath"
)

func advStrings(advs []*Advertisement) []string {
	out := make([]string, len(advs))
	for i, a := range advs {
		out[i] = a.String()
	}
	sort.Strings(out)
	return out
}

func TestGenerateNonRecursive(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT catalog (book+)>
<!ELEMENT book (title, author*, price?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT price (#PCDATA)>
`)
	advs, err := Generate(d)
	if err != nil {
		t.Fatal(err)
	}
	got := advStrings(advs)
	want := []string{
		"/catalog/book/author",
		"/catalog/book/price",
		"/catalog/book/title",
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("Generate = %v, want %v", got, want)
	}
}

func TestGenerateNullableTermini(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT root (opt)>
<!ELEMENT opt (leaf*)>
<!ELEMENT leaf (#PCDATA)>
`)
	advs, err := Generate(d)
	if err != nil {
		t.Fatal(err)
	}
	got := advStrings(advs)
	// opt can be childless, so /root/opt is itself a valid path terminus.
	want := []string{"/root/opt", "/root/opt/leaf"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("Generate = %v, want %v", got, want)
	}
}

func TestGenerateSelfLoop(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT root (em)>
<!ELEMENT em (#PCDATA | em)*>
`)
	advs, err := Generate(d)
	if err != nil {
		t.Fatal(err)
	}
	got := advStrings(advs)
	// "(/em)+" expands to one or more em's, so it also covers the plain
	// "/root/em" path; both spellings are emitted.
	want := []string{"/root(/em)+", "/root/em"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("Generate = %v, want %v", got, want)
	}
	for _, p := range [][]string{{"root", "em"}, {"root", "em", "em", "em"}} {
		if !anyMatches(advs, p) {
			t.Errorf("no advertisement matches %v", p)
		}
	}
}

func TestGenerateTwoCycle(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT root (block)>
<!ELEMENT block (p | bq)*>
<!ELEMENT bq (block)>
<!ELEMENT p (#PCDATA)>
`)
	advs, err := Generate(d)
	if err != nil {
		t.Fatal(err)
	}
	got := advStrings(advs)
	// Plain paths plus pumped variants: the cycle is block->bq->block.
	want := []string{
		"/root/block",
		"/root/block(/block/bq)+", // wait: cycle head is block, lap is block/bq
		"/root/block/bq/block",
		"/root/block/p",
	}
	_ = want
	// Assert the essential members rather than the exact set; the lap
	// grouping layout is checked by the soundness properties below.
	wantContains := []string{"/root/block", "/root/block/p"}
	set := make(map[string]bool, len(got))
	for _, s := range got {
		set[s] = true
	}
	for _, w := range wantContains {
		if !set[w] {
			t.Errorf("Generate missing %q; got %v", w, got)
		}
	}
	// Every pumped document path must match some advertisement.
	paths := [][]string{
		{"root", "block"},
		{"root", "block", "p"},
		{"root", "block", "bq", "block"},
		{"root", "block", "bq", "block", "p"},
		{"root", "block", "bq", "block", "bq", "block"},
		{"root", "block", "bq", "block", "bq", "block", "p"},
	}
	for _, p := range paths {
		if !anyMatches(advs, p) {
			t.Errorf("no advertisement matches document path %v; advs = %v", p, got)
		}
	}
}

func TestGenerateEmbedded(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT root (block)>
<!ELEMENT block (p | bq)*>
<!ELEMENT bq (quote*)>
<!ELEMENT quote (quote | block | p)*>
<!ELEMENT p (#PCDATA)>
`)
	advs, err := Generate(d)
	if err != nil {
		t.Fatal(err)
	}
	classes := make(map[Class]int)
	for _, a := range advs {
		classes[a.Classify()]++
	}
	if classes[SimpleRecursive] == 0 {
		t.Error("no simple-recursive advertisements generated")
	}
	if classes[EmbeddedRecursive] == 0 {
		t.Errorf("no embedded-recursive advertisements generated; got %v", advStrings(advs))
	}
	// Interleaved pumping: block/bq/quote/quote/block/bq/quote/block/p.
	paths := [][]string{
		{"root", "block", "bq", "quote", "quote", "block", "bq", "quote", "block", "p"},
		{"root", "block", "bq", "quote", "block"},
		{"root", "block", "bq", "quote", "quote", "p"},
	}
	for _, p := range paths {
		if !anyMatches(advs, p) {
			t.Errorf("no advertisement matches %v", p)
		}
	}
}

func anyMatches(advs []*Advertisement, path []string) bool {
	for _, a := range advs {
		if a.MatchesPath(path) {
			return true
		}
	}
	return false
}

func TestGenerateLimit(t *testing.T) {
	d := dtddata.NITF()
	if _, err := GenerateLimited(d, 10); err == nil {
		t.Error("limit of 10 should fail for the NITF-like DTD")
	}
}

func TestGenerateCorpora(t *testing.T) {
	psd, err := Generate(dtddata.PSD())
	if err != nil {
		t.Fatal(err)
	}
	nitf, err := Generate(dtddata.NITF())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range psd {
		if a.IsRecursive() {
			t.Errorf("PSD advertisement %s is recursive", a)
		}
	}
	recClasses := make(map[Class]int)
	for _, a := range nitf {
		recClasses[a.Classify()]++
	}
	t.Logf("PSD advertisements: %d", len(psd))
	t.Logf("NITF advertisements: %d (classes: %v)", len(nitf), recClasses)
	ratio := float64(len(nitf)) / float64(len(psd))
	// The paper reports the NITF advertisement set as ~35x the PSD one.
	if ratio < 20 || ratio > 55 {
		t.Errorf("NITF/PSD advertisement ratio = %.1f, want roughly 35", ratio)
	}
	if recClasses[SimpleRecursive] == 0 || recClasses[SeriesRecursive] == 0 || recClasses[EmbeddedRecursive] == 0 {
		t.Errorf("NITF advertisement classes missing: %v", recClasses)
	}
	// Generation must be deterministic.
	nitf2, err := Generate(dtddata.NITF())
	if err != nil {
		t.Fatal(err)
	}
	if len(nitf) != len(nitf2) {
		t.Fatal("generation not deterministic in count")
	}
	for i := range nitf {
		if !nitf[i].Equal(nitf2[i]) {
			t.Fatalf("generation not deterministic at %d: %s vs %s", i, nitf[i], nitf2[i])
		}
	}
}

// randomSub builds a random subscription over a small alphabet.
func randomSub(r *rand.Rand, maxLen int) *xpath.XPE {
	alphabet := []string{"a", "b", "c", xpath.Wildcard}
	n := 1 + r.Intn(maxLen)
	s := &xpath.XPE{Relative: r.Intn(2) == 0}
	for i := 0; i < n; i++ {
		axis := xpath.Child
		if (i > 0 || !s.Relative) && r.Intn(4) == 0 {
			axis = xpath.Descendant
		}
		s.Steps = append(s.Steps, xpath.Step{Axis: axis, Name: alphabet[r.Intn(len(alphabet))]})
	}
	return s
}

// TestQuickOverlapsAgainstEnumeration cross-validates the automaton matcher
// against brute-force expansion enumeration on random advertisements and
// subscriptions.
func TestQuickOverlapsAgainstEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	alphabet := []string{"a", "b", "c", "*"}
	randomAdv := func() *Advertisement {
		var build func(depth, n int) []Item
		build = func(depth, n int) []Item {
			var items []Item
			for i := 0; i < n; i++ {
				if depth < 2 && r.Intn(4) == 0 {
					items = append(items, Item{Group: build(depth+1, 1+r.Intn(2))})
				} else {
					items = append(items, Sym(alphabet[r.Intn(len(alphabet))]))
				}
			}
			return items
		}
		return &Advertisement{Items: build(0, 1+r.Intn(4))}
	}
	for i := 0; i < 3000; i++ {
		a := randomAdv()
		s := randomSub(r, 5)
		got := a.Overlaps(s)
		want := false
		a.Expansions(s.Len()+a.MinLen()+6, func(w []string) bool {
			if MatchesNonRecursive(w, s) {
				want = true
				return false
			}
			return true
		})
		if got != want {
			t.Fatalf("Overlaps(%s, %s) = %v, enumeration says %v", a, s, got, want)
		}
	}
}

// TestQuickSimRecAgainstNFA cross-validates the paper's Figure 3 algorithm
// against the automaton matcher on simple-recursive advertisements and
// absolute simple subscriptions.
func TestQuickSimRecAgainstNFA(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	alphabet := []string{"a", "b", "c", "*"}
	randomNames := func(n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = alphabet[r.Intn(len(alphabet))]
		}
		return out
	}
	for i := 0; i < 5000; i++ {
		a1 := randomNames(r.Intn(3))
		a2 := randomNames(1 + r.Intn(3))
		a3 := randomNames(r.Intn(3))
		items := make([]Item, 0, len(a1)+len(a3)+1)
		for _, n := range a1 {
			items = append(items, Sym(n))
		}
		g := make([]Item, len(a2))
		for j, n := range a2 {
			g[j] = Sym(n)
		}
		items = append(items, Item{Group: g})
		for _, n := range a3 {
			items = append(items, Sym(n))
		}
		a := &Advertisement{Items: items}
		// Absolute simple subscription.
		s := &xpath.XPE{}
		for _, n := range randomNames(1 + r.Intn(8)) {
			s.Steps = append(s.Steps, xpath.Step{Axis: xpath.Child, Name: n})
		}
		got := AbsExprAndSimRecAdv(a1, a2, a3, s)
		want := a.overlapsNFA(s)
		if got != want {
			t.Fatalf("AbsExprAndSimRecAdv(%s, %s) = %v, NFA says %v", a, s, got, want)
		}
	}
}

// TestQuickPathsMatchGeneratedAdvs: random walks through a recursive DTD's
// containment graph (stopping at childless-capable elements) always match at
// least one generated advertisement — the soundness property of Generate.
func TestQuickPathsMatchGeneratedAdvs(t *testing.T) {
	for _, tc := range []struct {
		name string
		d    *dtd.DTD
	}{
		{"psd", dtddata.PSD()},
		{"nitf", dtddata.NITF()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.d
			advs, err := Generate(d)
			if err != nil {
				t.Fatal(err)
			}
			r := rand.New(rand.NewSource(99))
			for i := 0; i < 2000; i++ {
				path := randomDocPath(r, d, 12)
				if path == nil {
					continue
				}
				if !anyMatches(advs, path) {
					t.Fatalf("document path %v matches no advertisement", path)
				}
			}
		})
	}
}

// randomDocPath random-walks the containment graph from the root, stopping
// with some probability at childless-capable elements and always by maxDepth;
// returns nil if it gets stuck beyond maxDepth.
func randomDocPath(r *rand.Rand, d *dtd.DTD, maxDepth int) []string {
	path := []string{d.Root}
	cur := d.Root
	for {
		kids := d.Children(cur)
		canStop := d.CanBeChildless(cur)
		if canStop && (len(kids) == 0 || r.Intn(3) == 0) {
			return path
		}
		if len(path) >= maxDepth {
			if canStop {
				return path
			}
			return nil
		}
		if len(kids) == 0 {
			return path
		}
		cur = kids[r.Intn(len(kids))]
		path = append(path, cur)
	}
}

func BenchmarkGenerateNITF(b *testing.B) {
	d := dtddata.NITF()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverlapsNonRecursive(b *testing.B) {
	a := MustParse("/a/*/e/*/d/*/c/b")
	s := xpath.MustParse("*/a//d/*/c//b")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Overlaps(s)
	}
}

func BenchmarkOverlapsRecursive(b *testing.B) {
	a := MustParse("/a/*/c(/e/d)+/*/c/e")
	s := xpath.MustParse("/*/a/c/*/d/e/d/*")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Overlaps(s)
	}
}
