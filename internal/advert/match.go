package advert

import (
	"math/bits"

	"repro/internal/symtab"
	"repro/internal/xpath"
)

// Overlaps reports whether the advertisement's publication set intersects
// the subscription's publication set, i.e. whether a subscription must be
// forwarded toward the advertisement's producer. It dispatches to the
// paper's algorithms for non-recursive advertisements and to the automaton
// matcher for recursive ones.
func (a *Advertisement) Overlaps(s *xpath.XPE) bool {
	if s.Len() == 0 {
		return false
	}
	if a.Classify() == NonRecursive {
		return MatchesNonRecursive(a.FlatNames(), s)
	}
	return a.overlapsNFA(s)
}

// MatchesNonRecursive implements the paper's Section 3.2 dispatch for a
// non-recursive advertisement (given as its element-test sequence) against
// any supported subscription.
func MatchesNonRecursive(adv []string, s *xpath.XPE) bool {
	switch {
	case !s.IsSimple():
		return DesExprAndAdv(adv, s)
	case s.Relative:
		return RelExprAndAdv(adv, s)
	default:
		return AbsExprAndAdv(adv, s)
	}
}

// AbsExprAndAdv is the paper's matching algorithm for absolute simple XPEs
// against non-recursive advertisements: the subscription may not be longer
// than the advertisement, and every aligned pair of element tests must
// overlap.
func AbsExprAndAdv(adv []string, s *xpath.XPE) bool {
	if s.Len() > len(adv) {
		return false
	}
	for i, st := range s.Steps {
		if !xpath.SymbolOverlaps(adv[i], st.Name) {
			return false
		}
	}
	return true
}

// RelExprAndAdv is the matching algorithm for relative simple XPEs against
// non-recursive advertisements: it looks for an alignment of the
// subscription at any start offset of the advertisement.
//
// The paper proposes adapting KMP to reach O(n). With wildcards on both
// sides the "overlaps" relation is not transitive, so a literal KMP failure
// function can skip viable alignments (false negatives, which in routing
// means lost publications). This implementation is therefore an anchored
// scan: it picks the subscription's least frequent concrete element as an
// anchor, scans the advertisement for positions compatible with that anchor,
// and verifies each candidate. It is sound and complete, O(n) in practice
// and O(n*k) worst case; see DESIGN.md.
func RelExprAndAdv(adv []string, s *xpath.XPE) bool {
	k := s.Len()
	if k > len(adv) {
		return false
	}
	anchor := -1 // index in s of the anchor element
	for i, st := range s.Steps {
		if !st.IsWildcard() {
			anchor = i
			break
		}
	}
	if anchor == -1 {
		// All-wildcard subscription: any advertisement at least as long
		// overlaps.
		return true
	}
	name := s.Steps[anchor].Name
	// A start offset c aligns s.Steps[anchor] with adv[c+anchor].
	for c := 0; c+k <= len(adv); c++ {
		if !xpath.SymbolOverlaps(adv[c+anchor], name) {
			continue
		}
		if relMatchAt(adv, s, c) {
			return true
		}
	}
	return false
}

// RelExprAndAdvNaive is the unoptimised relative matcher the paper
// describes before proposing its KMP adaptation: try every start offset.
// It exists as the ablation baseline for RelExprAndAdv.
func RelExprAndAdvNaive(adv []string, s *xpath.XPE) bool {
	k := s.Len()
	for c := 0; c+k <= len(adv); c++ {
		if relMatchAt(adv, s, c) {
			return true
		}
	}
	return false
}

func relMatchAt(adv []string, s *xpath.XPE, c int) bool {
	for i, st := range s.Steps {
		if !xpath.SymbolOverlaps(adv[c+i], st.Name) {
			return false
		}
	}
	return true
}

// DesExprAndAdv is the matching algorithm for XPEs containing descendant
// operators against non-recursive advertisements: the subscription is split
// at its "//" operators into maximal simple segments, which are matched
// against the advertisement left to right; the first segment is anchored at
// position 0 when the subscription is absolute, every other segment may
// float. Greedy leftmost placement is complete because placing a segment
// earlier only leaves more room for its successors.
func DesExprAndAdv(adv []string, s *xpath.XPE) bool {
	segs := s.Segments()
	pos := 0
	for si, seg := range segs {
		if si == 0 && !s.Relative && !seg.AfterDescendant {
			// Anchored first segment.
			if !segMatchesAt(adv, seg.Names, 0) {
				return false
			}
			pos = len(seg.Names)
			continue
		}
		p := findSegment(adv, seg.Names, pos)
		if p < 0 {
			return false
		}
		pos = p + len(seg.Names)
	}
	return true
}

// segMatchesAt reports whether every test of seg overlaps adv starting at
// offset c.
func segMatchesAt(adv, seg []string, c int) bool {
	if c+len(seg) > len(adv) {
		return false
	}
	for i, name := range seg {
		if !xpath.SymbolOverlaps(adv[c+i], name) {
			return false
		}
	}
	return true
}

// findSegment returns the smallest offset >= from at which seg overlaps adv,
// or -1.
func findSegment(adv, seg []string, from int) int {
	for c := from; c+len(seg) <= len(adv); c++ {
		if segMatchesAt(adv, seg, c) {
			return c
		}
	}
	return -1
}

// MatchesPath reports whether a concrete root-to-leaf publication path is in
// the advertisement's publication set, i.e. the path is an expansion of the
// advertisement (wildcard tests match any element; every group repeats one
// or more times; lengths must agree exactly). It is the string adapter over
// MatchesSymPath. The path is converted with Lookup, NOT Intern, so foreign
// publication paths never grow the shared interner on the publish hot path:
// the automaton is materialised first (package constructors compile it at
// construction; nfa() covers hand-built literals), which guarantees every
// edge name is already in the table — a path element Lookup maps to None
// therefore provably differs from every concrete edge symbol and can only
// be matched by wildcard edges, exactly the string semantics.
func (a *Advertisement) MatchesPath(path []string) bool {
	a.nfa() // edge names are interned no later than this
	return a.MatchesSymPath(symtab.LookupPath(path))
}

// MatchesSymPath is MatchesPath over an interned path: the automaton's
// alphabet is the shared symbol table, so the simulation compares uint32
// symbols only.
func (a *Advertisement) MatchesSymPath(path []symtab.Sym) bool {
	n := a.nfa()
	if n.closure64 != nil {
		return n.matchesPath64(path)
	}
	// Simulate the NFA over the concrete path; acceptance requires consuming
	// the entire path and ending in the accept state.
	cur := n.closure(map[int]bool{n.start: true})
	for _, sym := range path {
		next := make(map[int]bool)
		for st := range cur {
			for _, e := range n.edges[st] {
				if e.sym == symtab.Wildcard || e.sym == sym {
					next[e.to] = true
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = n.closure(next)
	}
	return cur[n.accept]
}

// matchesPath64 is the allocation-free bitmask simulation.
func (n *advNFA) matchesPath64(path []symtab.Sym) bool {
	cur := n.closure64[n.start]
	for _, sym := range path {
		var next uint64
		for rest := cur; rest != 0; {
			st := bits.TrailingZeros64(rest)
			rest &^= 1 << uint(st)
			for _, e := range n.edges[st] {
				if e.sym == symtab.Wildcard || e.sym == sym {
					next |= n.closure64[e.to]
				}
			}
		}
		if next == 0 {
			return false
		}
		cur = next
	}
	return cur&(1<<uint(n.accept)) != 0
}

// --- automaton construction and the general overlap matcher ---

type nfaEdge struct {
	sym symtab.Sym // interned element test; symtab.Wildcard matches anything
	to  int
}

type advNFA struct {
	edges   [][]nfaEdge // symbol-labelled transitions per state
	eps     [][]int     // epsilon transitions per state
	start   int
	accept  int
	nstates int
	// closure64 holds each state's epsilon closure as a bitmask when the
	// automaton has at most 64 states (always true for DTD-derived
	// advertisements); the bitmask paths avoid per-match allocations.
	closure64 []uint64
}

// nfa returns the advertisement's automaton, whose language is exactly its
// expansion set. Constructor-built advertisements compiled it eagerly;
// hand-built literals compile here on first use, atomically — racing
// callers compile equivalent automata and one wins the CAS, so a caller
// never observes a partially built automaton.
func (a *Advertisement) nfa() *advNFA {
	if n := a.nfaCached.Load(); n != nil {
		return n
	}
	n := a.compileNFA()
	if a.nfaCached.CompareAndSwap(nil, n) {
		return n
	}
	return a.nfaCached.Load()
}

// compileNFA builds the automaton: one state per symbol plus a private entry
// state per group.
func (a *Advertisement) compileNFA() *advNFA {
	n := &advNFA{}
	newState := func() int {
		n.edges = append(n.edges, nil)
		n.eps = append(n.eps, nil)
		n.nstates++
		return n.nstates - 1
	}
	n.start = newState()
	var compile func(seq []Item, from int) int
	compile = func(seq []Item, from int) int {
		cur := from
		for _, it := range seq {
			if it.IsGroup() {
				// The group gets a private entry state so that its
				// loop-back cannot leak into epsilon edges of whatever
				// preceded it.
				entry := newState()
				n.eps[cur] = append(n.eps[cur], entry)
				end := compile(it.Group, entry)
				// One-or-more: after a full iteration, loop back.
				n.eps[end] = append(n.eps[end], entry)
				cur = end
			} else {
				next := newState()
				n.edges[cur] = append(n.edges[cur], nfaEdge{sym: symtab.Intern(it.Name), to: next})
				cur = next
			}
		}
		return cur
	}
	n.accept = compile(a.Items, n.start)
	if n.nstates <= 64 {
		n.closure64 = make([]uint64, n.nstates)
		for st := 0; st < n.nstates; st++ {
			set := n.closure(map[int]bool{st: true})
			var mask uint64
			for q := range set {
				mask |= 1 << uint(q)
			}
			n.closure64[st] = mask
		}
	}
	return n
}

// overlaps64 is the allocation-light bitmask variant of the product
// reachability search: visited[j] holds the advertisement states reached
// with j subscription steps consumed.
func (n *advNFA) overlaps64(s *xpath.XPE) bool {
	k := s.Len()
	subSyms := s.Syms()
	visited := make([]uint64, k+1)
	type prod struct {
		adv int
		sub int
	}
	var queue []prod
	push := func(advMask uint64, sub int) {
		newBits := advMask &^ visited[sub]
		visited[sub] |= advMask
		for rest := newBits; rest != 0; {
			st := bits.TrailingZeros64(rest)
			rest &^= 1 << uint(st)
			queue = append(queue, prod{st, sub})
		}
	}
	push(n.closure64[n.start], 0)
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if p.sub == k {
			return true
		}
		skip := s.Steps[p.sub].Axis == xpath.Descendant || (p.sub == 0 && s.Relative)
		for _, e := range n.edges[p.adv] {
			if skip {
				push(n.closure64[e.to], p.sub)
			}
			if xpath.SymOverlaps(e.sym, subSyms[p.sub]) {
				push(n.closure64[e.to], p.sub+1)
			}
		}
	}
	return false
}

// closure expands a state set across epsilon transitions in place and
// returns it.
func (n *advNFA) closure(set map[int]bool) map[int]bool {
	var stack []int
	for st := range set {
		stack = append(stack, st)
	}
	for len(stack) > 0 {
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, to := range n.eps[st] {
			if !set[to] {
				set[to] = true
				stack = append(stack, to)
			}
		}
	}
	return set
}

// overlapsNFA decides publication-set overlap between the advertisement and
// an arbitrary supported subscription by reachability on the product of the
// advertisement automaton and the subscription's position automaton. It is
// sound and complete for all advertisement classes and all subscription
// forms, and serves as the production matcher for recursive advertisements
// and as the testing oracle for the paper's specialised algorithms.
//
// Subscription states are 0..k (number of steps consumed). Before consuming
// a Descendant step — or at state 0 of a relative subscription — the
// subscription may skip arbitrarily many advertisement symbols. Acceptance
// only requires consuming all subscription steps: any advertisement state
// can complete to a full expansion, so the remaining publication tail is
// unconstrained.
func (a *Advertisement) overlapsNFA(s *xpath.XPE) bool {
	n := a.nfa()
	if n.closure64 != nil {
		return n.overlaps64(s)
	}
	k := s.Len()
	subSyms := s.Syms()
	type prod struct{ adv, sub int }
	seen := make(map[prod]bool)
	var queue []prod
	push := func(p prod) {
		if !seen[p] {
			seen[p] = true
			queue = append(queue, p)
		}
	}
	for st := range n.closure(map[int]bool{n.start: true}) {
		push(prod{st, 0})
	}
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if p.sub == k {
			return true
		}
		skip := s.Steps[p.sub].Axis == xpath.Descendant || (p.sub == 0 && s.Relative)
		for _, e := range n.edges[p.adv] {
			targets := n.closure(map[int]bool{e.to: true})
			for to := range targets {
				if skip {
					push(prod{to, p.sub})
				}
				if xpath.SymOverlaps(e.sym, subSyms[p.sub]) {
					push(prod{to, p.sub + 1})
				}
			}
		}
	}
	return false
}
