package advert

import (
	"testing"

	"repro/internal/xpath"
)

func TestParseAndString(t *testing.T) {
	for _, in := range []string{
		"/a",
		"/a/b/c",
		"/a/*/c",
		"/a/*/c(/e/d)+/*/c/e",
		"/a(/b)+",
		"/x(/a(/b)+/c)+/y",
		"(/a/b)+/c",
	} {
		t.Run(in, func(t *testing.T) {
			a, err := Parse(in)
			if err != nil {
				t.Fatal(err)
			}
			if got := a.String(); got != in {
				t.Errorf("round trip = %q, want %q", got, in)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"", "a/b", "/a(", "/a()+", "/a(/b)", "/a(/b)*", "/a)/b", "/a(/b", "/a//b",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestClassify(t *testing.T) {
	tests := []struct {
		in   string
		want Class
	}{
		{"/a/b/c", NonRecursive},
		{"/a(/b/c)+/d", SimpleRecursive},
		{"/a(/b)+/c(/d)+", SeriesRecursive},
		{"/a(/b(/c)+)+/d", EmbeddedRecursive},
		{"/a(/b(/c)+/d)+(/e)+", EmbeddedRecursive},
	}
	for _, tt := range tests {
		if got := MustParse(tt.in).Classify(); got != tt.want {
			t.Errorf("Classify(%s) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestSplitSimple(t *testing.T) {
	a1, a2, a3, ok := MustParse("/a/*/c(/e/d)+/*/c/e").SplitSimple()
	if !ok {
		t.Fatal("not simple-recursive")
	}
	if len(a1) != 3 || a1[2] != "c" || len(a2) != 2 || a2[0] != "e" || len(a3) != 3 || a3[2] != "e" {
		t.Errorf("split = %v %v %v", a1, a2, a3)
	}
	if _, _, _, ok := MustParse("/a/b").SplitSimple(); ok {
		t.Error("non-recursive advertisement split as simple-recursive")
	}
}

func TestMinLen(t *testing.T) {
	tests := []struct {
		in   string
		want int
	}{
		{"/a/b", 2},
		{"/a(/b/c)+/d", 4},
		{"/a(/b(/c)+)+", 3},
	}
	for _, tt := range tests {
		if got := MustParse(tt.in).MinLen(); got != tt.want {
			t.Errorf("MinLen(%s) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

// TestAbsExprAndAdvPaperExample encodes the worked example from Section 3.2:
// a = /b/*/*/c/c/d and s = /*/c/*/b/c do not overlap (mismatch at the
// fourth pair).
func TestAbsExprAndAdvPaperExample(t *testing.T) {
	adv := []string{"b", "*", "*", "c", "c", "d"}
	s := xpath.MustParse("/*/c/*/b/c")
	if AbsExprAndAdv(adv, s) {
		t.Error("paper example should not overlap")
	}
	s2 := xpath.MustParse("/b/*/*/c")
	if !AbsExprAndAdv(adv, s2) {
		t.Error("prefix-compatible subscription should overlap")
	}
	long := xpath.MustParse("/b/*/*/c/c/d/e")
	if AbsExprAndAdv(adv, long) {
		t.Error("subscription longer than advertisement cannot overlap")
	}
}

// TestDesExprAndAdvPaperExample encodes the Section 3.2 descendant example:
// a = /a/*/e/*/d/*/c/b and s = */a//d/*/c//b overlap.
func TestDesExprAndAdvPaperExample(t *testing.T) {
	adv := []string{"a", "*", "e", "*", "d", "*", "c", "b"}
	s := xpath.MustParse("*/a//d/*/c//b")
	if !DesExprAndAdv(adv, s) {
		t.Error("paper example should overlap")
	}
}

func TestRelExprAndAdv(t *testing.T) {
	tests := []struct {
		adv  string // '/'-separated names
		sub  string
		want bool
	}{
		{"/a/b/c/d", "b/c", true},
		{"/a/b/c/d", "c/b", false},
		{"/a/*/c/d", "b/c", true},
		{"/a/b/c/d", "*/*/*/*", true},
		{"/a/b/c", "*/*/*/*", false}, // longer than advertisement
		{"/a/b/a/b/c", "a/b/c", true},
		{"/a/b/a/b/d", "a/b/c", false},
		{"/x/*/*/y", "*/*", true},
	}
	for _, tt := range tests {
		adv := MustParse(tt.adv).FlatNames()
		s := xpath.MustParse(tt.sub)
		if got := RelExprAndAdv(adv, s); got != tt.want {
			t.Errorf("RelExprAndAdv(%s, %s) = %v, want %v", tt.adv, tt.sub, got, tt.want)
		}
	}
}

// TestFig3PaperExample encodes the Figure 3 worked example:
// a = /a/*/c(/e/d)+/*/c/e and s = /*/a/c/*/d/e/d/* match with the recursive
// pattern repeated twice.
func TestFig3PaperExample(t *testing.T) {
	a := MustParse("/a/*/c(/e/d)+/*/c/e")
	s := xpath.MustParse("/*/a/c/*/d/e/d/*")
	a1, a2, a3, ok := a.SplitSimple()
	if !ok {
		t.Fatal("split failed")
	}
	if !AbsExprAndSimRecAdv(a1, a2, a3, s) {
		t.Error("Figure 3 example should match")
	}
	if !a.Overlaps(s) {
		t.Error("automaton matcher disagrees with Figure 3 example")
	}
}

func TestOverlapsRecursive(t *testing.T) {
	tests := []struct {
		adv, sub string
		want     bool
	}{
		{"/a(/b)+/c", "/a/b/c", true},
		{"/a(/b)+/c", "/a/b/b/b/c", true},
		{"/a(/b)+/c", "/a/c", false},
		{"/a(/b)+/c", "/a/b/c/c", false},
		{"/a(/b)+/c", "//c", true},
		{"/a(/b)+/c", "b/b/b", true},
		{"/a(/b)+/c", "b/c/b", false},
		{"/a(/b/c)+/d", "/a/b/c/b/c/d", true},
		{"/a(/b/c)+/d", "/a/b/b/c/d", false},
		{"/x(/a(/b)+/c)+/y", "/x/a/b/b/c/a/b/c/y", true},
		{"/x(/a(/b)+/c)+/y", "/x/a/c/y", false},
		{"/a(/b)+(/c)+/d", "/a/b/b/c/c/c/d", true},
		{"/a(/b)+(/c)+/d", "/a/c/b/d", false},
		{"/a(/b)+/c", "/*/*/*/*/*", true},
		{"/a(/b)+", "//b/b/b/b/b/b/b/b", true},
	}
	for _, tt := range tests {
		a := MustParse(tt.adv)
		s := xpath.MustParse(tt.sub)
		if got := a.Overlaps(s); got != tt.want {
			t.Errorf("Overlaps(%s, %s) = %v, want %v", tt.adv, tt.sub, got, tt.want)
		}
	}
}

func TestMatchesPath(t *testing.T) {
	tests := []struct {
		adv  string
		path []string
		want bool
	}{
		{"/a/b", []string{"a", "b"}, true},
		{"/a/b", []string{"a"}, false},
		{"/a/b", []string{"a", "b", "c"}, false}, // exact length
		{"/a/*", []string{"a", "z"}, true},
		{"/a(/b)+/c", []string{"a", "b", "c"}, true},
		{"/a(/b)+/c", []string{"a", "b", "b", "b", "c"}, true},
		{"/a(/b)+/c", []string{"a", "c"}, false},
		{"/x(/a(/b)+/c)+/y", []string{"x", "a", "b", "c", "a", "b", "b", "c", "y"}, true},
		{"/x(/a(/b)+/c)+/y", []string{"x", "a", "b", "a", "b", "c", "y"}, false},
	}
	for _, tt := range tests {
		a := MustParse(tt.adv)
		if got := a.MatchesPath(tt.path); got != tt.want {
			t.Errorf("MatchesPath(%s, %v) = %v, want %v", tt.adv, tt.path, got, tt.want)
		}
	}
}

func TestExpansions(t *testing.T) {
	a := MustParse("/a(/b)+/c")
	var got []string
	a.Expansions(5, func(w []string) bool {
		got = append(got, joinPath(w))
		return true
	})
	want := map[string]bool{"a/b/c": true, "a/b/b/c": true, "a/b/b/b/c": true}
	if len(got) != len(want) {
		t.Fatalf("expansions = %v", got)
	}
	for _, w := range got {
		if !want[w] {
			t.Errorf("unexpected expansion %q", w)
		}
	}
}

func TestExpansionsNested(t *testing.T) {
	// Nested groups must allow different inner counts per outer iteration.
	a := MustParse("/x(/a(/b)+)+")
	found := false
	a.Expansions(7, func(w []string) bool {
		if joinPath(w) == "x/a/b/a/b/b" {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Error("expansion with varying inner counts not enumerated")
	}
}

func joinPath(w []string) string {
	out := ""
	for i, s := range w {
		if i > 0 {
			out += "/"
		}
		out += s
	}
	return out
}

func TestToXPE(t *testing.T) {
	x := MustParse("/a/*/c").ToXPE()
	if x.String() != "/a/*/c" || x.Relative {
		t.Errorf("ToXPE = %v", x)
	}
}

func TestEqualClone(t *testing.T) {
	a := MustParse("/x(/a(/b)+/c)+/y")
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Items[1].Group[1].Group[0].Name = "z"
	if a.Equal(b) {
		t.Fatal("mutated clone still equal")
	}
	if a.Items[1].Group[1].Group[0].Name != "b" {
		t.Fatal("clone aliases original")
	}
}
