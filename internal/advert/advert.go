// Package advert implements XML routing advertisements: absolute XPath-like
// path expressions derived from a publisher's DTD, possibly containing
// one-or-more "(...)+" recursive patterns. It provides the paper's
// subscription/advertisement matching algorithms (AbsExprAndAdv,
// RelExprAndAdv, DesExprAndAdv and the recursive variants), a general
// automaton-based matcher used both as production path for recursive
// advertisements and as a cross-validation oracle, and the DTD-to-
// advertisement generation algorithm.
//
// An advertisement describes the set of root-to-leaf paths (publications) a
// producer may emit. The "+" pattern syntax is internal to the system — it
// is not XPath and is never exposed to clients, exactly as in the paper.
package advert

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/xpath"
)

// Item is one component of an advertisement: either a single element test
// (Name != "", Group == nil) or a one-or-more group over a nested sequence
// (Name == "", Group != nil).
type Item struct {
	Name  string
	Group []Item
}

// IsGroup reports whether the item is a "(...)+" group.
func (it Item) IsGroup() bool { return it.Name == "" }

// Sym returns a symbol item.
func Sym(name string) Item { return Item{Name: name} }

// Rep returns a one-or-more group item over the given sequence.
func Rep(items ...Item) Item { return Item{Group: items} }

// Class classifies an advertisement per the paper's taxonomy.
type Class uint8

const (
	// NonRecursive advertisements contain no group.
	NonRecursive Class = iota
	// SimpleRecursive advertisements contain exactly one group, not nested.
	SimpleRecursive
	// SeriesRecursive advertisements contain two or more groups in
	// sequence, none nested.
	SeriesRecursive
	// EmbeddedRecursive advertisements contain a group nested inside
	// another group.
	EmbeddedRecursive
)

// String returns the paper's name for the class.
func (c Class) String() string {
	switch c {
	case NonRecursive:
		return "non-recursive"
	case SimpleRecursive:
		return "simple-recursive"
	case SeriesRecursive:
		return "series-recursive"
	default:
		return "embedded-recursive"
	}
}

// Advertisement is an absolute path pattern over element names and
// wildcards, with optional one-or-more groups.
//
// The package constructors (NewAdvertisement, FromPath, Parse, Clone, and
// the DTD generator) compile the matching automaton EAGERLY, which interns
// the advertisement's element names at construction — control-plane time —
// so the publish-path matchers never grow the shared symbol table (see
// MatchesPath). A hand-built literal (&Advertisement{Items: ...}) still
// works: its automaton is compiled atomically on first match. Either way an
// Advertisement must be treated as immutable once constructed.
type Advertisement struct {
	Items []Item

	nfaCached atomic.Pointer[advNFA]
}

// NewAdvertisement builds an advertisement from items.
func NewAdvertisement(items ...Item) *Advertisement {
	return compiled(&Advertisement{Items: items})
}

// FromPath builds a non-recursive advertisement from element names.
func FromPath(names ...string) *Advertisement {
	items := make([]Item, len(names))
	for i, n := range names {
		items[i] = Sym(n)
	}
	return compiled(&Advertisement{Items: items})
}

// compiled eagerly builds the advertisement's automaton and returns it.
func compiled(a *Advertisement) *Advertisement {
	a.nfaCached.Store(a.compileNFA())
	return a
}

// Classify returns the advertisement's class.
func (a *Advertisement) Classify() Class {
	top, nested := countGroups(a.Items, false)
	switch {
	case nested:
		return EmbeddedRecursive
	case top == 0:
		return NonRecursive
	case top == 1:
		return SimpleRecursive
	default:
		return SeriesRecursive
	}
}

// countGroups counts groups at any depth of seq; top is the total group
// count, nested reports whether any group occurs inside another.
func countGroups(seq []Item, inGroup bool) (total int, nested bool) {
	for _, it := range seq {
		if !it.IsGroup() {
			continue
		}
		total++
		if inGroup {
			nested = true
		}
		t, n := countGroups(it.Group, true)
		total += t
		if n {
			nested = true
		}
	}
	return total, nested
}

// IsRecursive reports whether the advertisement contains any group.
func (a *Advertisement) IsRecursive() bool { return a.Classify() != NonRecursive }

// FlatNames returns the element tests of a non-recursive advertisement. It
// panics if the advertisement is recursive; callers dispatch on Classify.
func (a *Advertisement) FlatNames() []string {
	names := make([]string, len(a.Items))
	for i, it := range a.Items {
		if it.IsGroup() {
			panic("advert: FlatNames on recursive advertisement " + a.String())
		}
		names[i] = it.Name
	}
	return names
}

// MinLen returns the length of the shortest expansion (each group expanded
// exactly once).
func (a *Advertisement) MinLen() int { return minLen(a.Items) }

func minLen(seq []Item) int {
	n := 0
	for _, it := range seq {
		if it.IsGroup() {
			n += minLen(it.Group)
		} else {
			n++
		}
	}
	return n
}

// String renders the advertisement in the paper's notation, e.g.
// "/a/*(/e/d)+/c". The result round-trips through Parse.
func (a *Advertisement) String() string {
	var b strings.Builder
	writeItems(&b, a.Items)
	return b.String()
}

func writeItems(b *strings.Builder, seq []Item) {
	for _, it := range seq {
		if it.IsGroup() {
			b.WriteByte('(')
			writeItems(b, it.Group)
			b.WriteString(")+")
		} else {
			b.WriteByte('/')
			b.WriteString(it.Name)
		}
	}
}

// Key returns a canonical map key for the advertisement.
func (a *Advertisement) Key() string { return a.String() }

// Equal reports structural equality.
func (a *Advertisement) Equal(b *Advertisement) bool {
	return itemsEqual(a.Items, b.Items)
}

func itemsEqual(x, y []Item) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i].Name != y[i].Name {
			return false
		}
		if (x[i].Group == nil) != (y[i].Group == nil) {
			return false
		}
		if x[i].Group != nil && !itemsEqual(x[i].Group, y[i].Group) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (a *Advertisement) Clone() *Advertisement {
	return compiled(&Advertisement{Items: cloneItems(a.Items)})
}

func cloneItems(seq []Item) []Item {
	out := make([]Item, len(seq))
	for i, it := range seq {
		out[i] = Item{Name: it.Name}
		if it.Group != nil {
			out[i].Group = cloneItems(it.Group)
		}
	}
	return out
}

// ToXPE converts a non-recursive advertisement to the equivalent absolute
// simple XPE (advertisements have the same format as absolute simple
// subscriptions, which is what makes advertisement covering reuse the
// subscription covering algorithms).
func (a *Advertisement) ToXPE() *xpath.XPE {
	names := a.FlatNames()
	steps := make([]xpath.Step, len(names))
	for i, n := range names {
		steps[i] = xpath.Step{Axis: xpath.Child, Name: n}
	}
	return &xpath.XPE{Steps: steps}
}

// Parse parses the paper's advertisement notation: a leading-"/" path whose
// components are element names or "*", with "(...)+" groups, e.g.
// "/a/*/c(/e/d)+/*/c/e" or "/x(/a(/b)+/c)+/y".
func Parse(input string) (*Advertisement, error) {
	p := &advParser{src: input}
	items, err := p.sequence(false)
	if err != nil {
		return nil, fmt.Errorf("advert: parse %q: %w", input, err)
	}
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("advert: parse %q: trailing input at offset %d", input, p.pos)
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("advert: parse %q: empty advertisement", input)
	}
	return compiled(&Advertisement{Items: items}), nil
}

// MustParse is Parse for statically known advertisements; it panics on error.
func MustParse(input string) *Advertisement {
	a, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return a
}

type advParser struct {
	src string
	pos int
}

func (p *advParser) sequence(inGroup bool) ([]Item, error) {
	var items []Item
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '/':
			p.pos++
			start := p.pos
			for p.pos < len(p.src) && p.src[p.pos] != '/' && p.src[p.pos] != '(' && p.src[p.pos] != ')' {
				p.pos++
			}
			name := p.src[start:p.pos]
			if name == "" {
				return nil, fmt.Errorf("empty element name at offset %d", start)
			}
			items = append(items, Sym(name))
		case '(':
			p.pos++
			inner, err := p.sequence(true)
			if err != nil {
				return nil, err
			}
			if len(inner) == 0 {
				return nil, fmt.Errorf("empty group at offset %d", p.pos)
			}
			if !strings.HasPrefix(p.src[p.pos:], ")+") {
				return nil, fmt.Errorf("group not closed with \")+\" at offset %d", p.pos)
			}
			p.pos += 2
			items = append(items, Item{Group: inner})
		case ')':
			if !inGroup {
				return nil, fmt.Errorf("unbalanced ')' at offset %d", p.pos)
			}
			return items, nil
		default:
			return nil, fmt.Errorf("unexpected %q at offset %d", p.src[p.pos], p.pos)
		}
	}
	if inGroup {
		return nil, fmt.Errorf("unterminated group")
	}
	return items, nil
}
