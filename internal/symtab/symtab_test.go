package symtab

import (
	"fmt"
	"sync"
	"testing"
)

func TestSentinels(t *testing.T) {
	tb := NewTable()
	if got := tb.Intern(WildcardName); got != Wildcard {
		t.Fatalf("Intern(%q) = %d, want Wildcard (%d)", WildcardName, got, Wildcard)
	}
	if got := tb.Intern(AttrName); got != Attr {
		t.Fatalf("Intern(%q) = %d, want Attr (%d)", AttrName, got, Attr)
	}
	if got := tb.NameOf(Wildcard); got != WildcardName {
		t.Fatalf("NameOf(Wildcard) = %q", got)
	}
	if got := tb.NameOf(None); got != "" {
		t.Fatalf("NameOf(None) = %q, want empty", got)
	}
	if _, ok := tb.Lookup("never-interned"); ok {
		t.Fatal("Lookup of unknown name reported ok")
	}
	if got := tb.Len(); got != 2 {
		t.Fatalf("empty table Len = %d, want 2 sentinels", got)
	}
}

func TestInternAssignsStableSymbols(t *testing.T) {
	tb := NewTable()
	a := tb.Intern("a")
	b := tb.Intern("b")
	if a < FirstDynamic || b < FirstDynamic {
		t.Fatalf("dynamic symbols %d, %d collide with the reserved range", a, b)
	}
	if a == b {
		t.Fatalf("distinct names interned to the same symbol %d", a)
	}
	if again := tb.Intern("a"); again != a {
		t.Fatalf("re-interning changed the symbol: %d then %d", a, again)
	}
	if got, ok := tb.Lookup("a"); !ok || got != a {
		t.Fatalf("Lookup(a) = %d, %v; want %d, true", got, ok, a)
	}
	if got := tb.NameOf(a); got != "a" {
		t.Fatalf("NameOf(%d) = %q, want \"a\"", a, got)
	}
	if got := tb.NameOf(Sym(1 << 20)); got != "" {
		t.Fatalf("NameOf(out of range) = %q, want empty", got)
	}
	if got := tb.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4 (two sentinels + a + b)", got)
	}
}

func TestPathConversion(t *testing.T) {
	tb := NewTable()
	syms := tb.InternPath([]string{"x", "*", "x"})
	if syms[0] != syms[2] || syms[0] == syms[1] {
		t.Fatalf("InternPath symbols inconsistent: %v", syms)
	}
	if syms[1] != Wildcard {
		t.Fatalf("InternPath(*) = %d, want Wildcard", syms[1])
	}
	looked := tb.LookupPath([]string{"x", "unknown"})
	if looked[0] != syms[0] {
		t.Fatalf("LookupPath(x) = %d, want %d", looked[0], syms[0])
	}
	if looked[1] != None {
		t.Fatalf("LookupPath(unknown) = %d, want None", looked[1])
	}
}

func TestDefaultTable(t *testing.T) {
	s := Intern("symtab-default-test-name")
	if got, ok := Lookup("symtab-default-test-name"); !ok || got != s {
		t.Fatalf("Default Lookup = %d, %v; want %d, true", got, ok, s)
	}
	if NameOf(s) != "symtab-default-test-name" {
		t.Fatalf("Default NameOf(%d) = %q", s, NameOf(s))
	}
	if got := InternPath([]string{"*"}); got[0] != Wildcard {
		t.Fatalf("Default InternPath(*) = %v", got)
	}
	if got := LookupPath([]string{"symtab-default-test-name"}); got[0] != s {
		t.Fatalf("Default LookupPath = %v, want [%d]", got, s)
	}
}

// TestConcurrentInternLookup hammers one table from many goroutines that
// both intern a shared alphabet and read back earlier assignments; run under
// -race it proves the lock-free read path never observes a torn snapshot,
// and the final table must hold exactly one stable symbol per name.
func TestConcurrentInternLookup(t *testing.T) {
	const (
		goroutines = 16
		names      = 200
	)
	tb := NewTable()
	name := func(i int) string { return fmt.Sprintf("elem%03d", i) }
	var wg sync.WaitGroup
	results := make([][]Sym, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]Sym, names)
			for i := 0; i < names; i++ {
				// Interleave interning with lock-free reads of names that
				// other goroutines may be installing concurrently.
				out[i] = tb.Intern(name(i))
				if sym, ok := tb.Lookup(name(i)); !ok || sym != out[i] {
					t.Errorf("goroutine %d: Lookup(%q) = %d, %v after Intern returned %d", g, name(i), sym, ok, out[i])
					return
				}
				if got := tb.NameOf(out[i]); got != name(i) {
					t.Errorf("goroutine %d: NameOf(%d) = %q, want %q", g, out[i], got, name(i))
					return
				}
				tb.LookupPath([]string{name(i), name((i * 7) % names), "not-there"})
			}
			results[g] = out
		}()
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range results[0] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutines 0 and %d disagree on %q: %d vs %d", g, name(i), results[0][i], results[g][i])
			}
		}
	}
	if got := tb.Len(); got != names+2 {
		t.Fatalf("Len = %d after concurrent interning, want %d", got, names+2)
	}
}
