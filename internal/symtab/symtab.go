// Package symtab implements the interned symbol table shared by the matching
// stack: a bijection between XML element names and small integer symbols
// (Sym). Comparing two Syms is a single uint32 comparison, so every layer of
// the publication hot path — subscription-tree matching, the advertisement
// automaton, covering checks — compares symbols instead of strings, the same
// device FPGA XML filters use to keep their match pipelines narrow.
//
// A small range of symbols is reserved for sentinels: None (the zero Sym,
// never assigned to a name), Wildcard (the XPath "*" test), and Attr (a
// marker for encoding attribute tokens into path alphabets). Intern maps "*"
// to Wildcard, so interned expressions and interned publication paths agree
// on the wildcard without special cases.
//
// # Concurrency
//
// A Table is safe for concurrent use. The read path (Lookup, NameOf, Len) is
// lock-free: readers load an immutable snapshot through an atomic pointer.
// Intern is lock-free for names already present — the overwhelmingly common
// case once a workload's element alphabet has been seen — and takes the
// writer mutex only to install a new name, publishing a fresh snapshot
// copy-on-write. Symbols are never reassigned or removed; a Sym handed out
// once names the same string forever.
package symtab

import (
	"sync"
	"sync/atomic"
)

// Sym is an interned element name. The zero value is None, which no name
// ever interns to; concrete names start at FirstDynamic.
type Sym uint32

const (
	// None is the invalid symbol. Lookup of an unknown name reports it, and
	// path converters may use it for elements outside the interned alphabet:
	// no concrete step symbol ever equals None, so only wildcards match it.
	None Sym = 0
	// Wildcard is the reserved symbol of the XPath "*" name test.
	Wildcard Sym = 1
	// Attr is the reserved marker for attribute tokens in encoded path
	// alphabets (e.g. interleaving "@name" tokens with element symbols).
	Attr Sym = 2
	// FirstDynamic is the first symbol assigned to an ordinary name;
	// symbols in [Attr+1, FirstDynamic) are reserved for future sentinels.
	FirstDynamic Sym = 8
)

// WildcardName is the name the Wildcard sentinel interns.
const WildcardName = "*"

// AttrName is the name the Attr sentinel interns.
const AttrName = "@"

// snapshot is one immutable version of the table. names is indexed by Sym
// (sentinel and reserved slots included); byName inverts it.
type snapshot struct {
	byName map[string]Sym
	names  []string
}

// Table is an interning symbol table. The zero value is not usable; call
// NewTable (or use the package-level Default table).
type Table struct {
	mu   sync.Mutex // serialises writers
	snap atomic.Pointer[snapshot]
}

// NewTable returns a table holding only the reserved sentinels.
func NewTable() *Table {
	names := make([]string, FirstDynamic)
	names[Wildcard] = WildcardName
	names[Attr] = AttrName
	t := &Table{}
	t.snap.Store(&snapshot{
		byName: map[string]Sym{WildcardName: Wildcard, AttrName: Attr},
		names:  names,
	})
	return t
}

// Intern returns the symbol for name, assigning a fresh one on first sight.
// "*" always interns to Wildcard and "@" to Attr.
func (t *Table) Intern(name string) Sym {
	s := t.snap.Load()
	if sym, ok := s.byName[name]; ok {
		return sym
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s = t.snap.Load() // re-check under the writer lock
	if sym, ok := s.byName[name]; ok {
		return sym
	}
	sym := Sym(len(s.names))
	next := &snapshot{
		byName: make(map[string]Sym, len(s.byName)+1),
		names:  make([]string, len(s.names), len(s.names)+1),
	}
	for k, v := range s.byName {
		next.byName[k] = v
	}
	copy(next.names, s.names)
	next.byName[name] = sym
	next.names = append(next.names, name)
	t.snap.Store(next)
	return sym
}

// Lookup returns the symbol for name without interning it; ok is false (and
// the symbol None) when the name has never been interned.
func (t *Table) Lookup(name string) (sym Sym, ok bool) {
	sym, ok = t.snap.Load().byName[name]
	return sym, ok
}

// LookupBytes is Lookup for a name held as a byte slice, without interning
// and without allocating: the string(b) conversion inside a map index is
// recognised by the compiler and performs no copy. Streaming scanners use it
// to convert element names in place; unknown names report None, which only
// wildcard steps match — safe because any name a concrete step could match
// is already interned by XPE.Syms.
func (t *Table) LookupBytes(b []byte) (sym Sym, ok bool) {
	sym, ok = t.snap.Load().byName[string(b)]
	return sym, ok
}

// NameOf returns the name a symbol was interned from ("" for None, unknown
// symbols, and unassigned reserved slots).
func (t *Table) NameOf(sym Sym) string {
	s := t.snap.Load()
	if int(sym) >= len(s.names) {
		return ""
	}
	return s.names[sym]
}

// Len returns the number of interned names, sentinels included.
func (t *Table) Len() int {
	s := t.snap.Load()
	n := 2 // Wildcard, Attr
	for _, name := range s.names[FirstDynamic:] {
		if name != "" {
			n++
		}
	}
	return n
}

// InternPath interns every element of a root-to-leaf path.
func (t *Table) InternPath(path []string) []Sym {
	out := make([]Sym, len(path))
	for i, name := range path {
		out[i] = t.Intern(name)
	}
	return out
}

// LookupPath converts a path without growing the table; elements outside the
// interned alphabet become None (which only wildcards match).
func (t *Table) LookupPath(path []string) []Sym {
	s := t.snap.Load()
	out := make([]Sym, len(path))
	for i, name := range path {
		out[i] = s.byName[name] // missing -> None
	}
	return out
}

// Default is the process-wide table the matching stack shares: expressions,
// advertisements, and publications interned against the same table agree on
// every symbol.
var Default = NewTable()

// Intern interns name in the Default table.
func Intern(name string) Sym { return Default.Intern(name) }

// Lookup looks name up in the Default table.
func Lookup(name string) (Sym, bool) { return Default.Lookup(name) }

// LookupBytes looks a byte-slice name up in the Default table.
func LookupBytes(b []byte) (Sym, bool) { return Default.LookupBytes(b) }

// NameOf resolves a symbol against the Default table.
func NameOf(sym Sym) string { return Default.NameOf(sym) }

// InternPath interns a path against the Default table.
func InternPath(path []string) []Sym { return Default.InternPath(path) }

// LookupPath converts a path against the Default table without growing it.
func LookupPath(path []string) []Sym { return Default.LookupPath(path) }
