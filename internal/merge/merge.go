// Package merge implements the paper's subscription merging rules. When no
// covering relation holds among a set of subscriptions they may still be
// replaced by a more general merger, shrinking the routing table further:
//
//   - rule 1: subscriptions identical except for one element test are merged
//     by replacing that test with the wildcard;
//   - rule 2: subscriptions differing in one element test and one operator
//     are merged by replacing the test with the wildcard and the operator
//     with "//";
//   - rule 3: subscriptions sharing a prefix and a suffix are merged by
//     replacing the differing middles with a "//" operator.
//
// A merger is perfect when its publication set equals the union of its
// sources' sets and imperfect otherwise; the imperfect degree D_imperfect =
// |P(s) − ∪P(si)| / |P(s)| is estimated against the universe of publication
// paths the producer DTD admits, as the paper proposes.
package merge

import (
	"repro/internal/cover"
	"repro/internal/xpath"
)

// Rule identifies which merging rule produced a merger.
type Rule int

const (
	// RuleElement is rule 1 (one differing element test).
	RuleElement Rule = 1
	// RuleOperator is rule 2 (one differing test and one differing
	// operator).
	RuleOperator Rule = 2
	// RuleInfix is rule 3 (differing middles replaced by "//").
	RuleInfix Rule = 3
)

// Merger is the outcome of merging a set of subscriptions.
type Merger struct {
	Result  *xpath.XPE
	Sources []*xpath.XPE
	Rule    Rule
	// Degree is the estimated imperfect degree; 0 for perfect mergers. It
	// is filled in by the caller's estimator.
	Degree float64
}

// MergePositionwise merges subscriptions of identical shape (same length,
// same relativity) by generalising the positions where they differ: a
// differing element test becomes the wildcard, a differing operator becomes
// "//". It implements rules 1 and 2 and returns ok=false when the inputs
// need more than maxElemDiffs element generalisations or more than
// maxOpDiffs operator generalisations, or when they are already in a
// covering relation (covering, not merging, should handle those).
func MergePositionwise(xpes []*xpath.XPE, maxElemDiffs, maxOpDiffs int) (*xpath.XPE, Rule, bool) {
	if len(xpes) < 2 {
		return nil, 0, false
	}
	first := xpes[0]
	for _, x := range xpes[1:] {
		if x.Len() != first.Len() || x.Relative != first.Relative {
			return nil, 0, false
		}
	}
	merged := first.Clone()
	elemDiffs, opDiffs := 0, 0
	for i := range merged.Steps {
		for _, x := range xpes[1:] {
			if x.Steps[i].Name != first.Steps[i].Name {
				elemDiffs++
				merged.Steps[i].Name = xpath.Wildcard
				break
			}
		}
		for _, x := range xpes[1:] {
			if x.Steps[i].Axis != first.Steps[i].Axis {
				opDiffs++
				merged.Steps[i].Axis = xpath.Descendant
				break
			}
		}
	}
	if elemDiffs == 0 && opDiffs == 0 {
		return nil, 0, false // identical subscriptions
	}
	if elemDiffs > maxElemDiffs || opDiffs > maxOpDiffs {
		return nil, 0, false
	}
	// Covering pairs are covering's job, not merging's.
	for i, a := range xpes {
		for _, b := range xpes[i+1:] {
			if cover.Covers(a, b) || cover.Covers(b, a) {
				return nil, 0, false
			}
		}
	}
	rule := RuleElement
	if opDiffs > 0 {
		rule = RuleOperator
	}
	return merged, rule, true
}

// MergeInfix implements rule 3: if s1 and s2 share a common step prefix and
// a common step suffix whose combined length is at least minCommon steps
// (and at least one step each side of the differing middles), the middles
// are replaced by a single "//" operator. The rule is only worth applying
// when most of the expressions agree, otherwise the merger admits too many
// false positives.
func MergeInfix(s1, s2 *xpath.XPE, minCommon int) (*xpath.XPE, bool) {
	if s1.Relative != s2.Relative {
		return nil, false
	}
	if s1.Equal(s2) {
		return nil, false
	}
	pre := 0
	for pre < s1.Len() && pre < s2.Len() && s1.Steps[pre] == s2.Steps[pre] {
		pre++
	}
	suf := 0
	for suf < s1.Len()-pre && suf < s2.Len()-pre &&
		s1.Steps[s1.Len()-1-suf] == s2.Steps[s2.Len()-1-suf] {
		suf++
	}
	if pre == 0 || suf == 0 || pre+suf < minCommon {
		return nil, false
	}
	if pre+suf >= s1.Len() && pre+suf >= s2.Len() {
		// No differing middle on either side; covering handles this shape.
		return nil, false
	}
	merged := &xpath.XPE{Relative: s1.Relative}
	merged.Steps = append(merged.Steps, s1.Steps[:pre]...)
	tail := make([]xpath.Step, suf)
	copy(tail, s1.Steps[s1.Len()-suf:])
	tail[0].Axis = xpath.Descendant
	merged.Steps = append(merged.Steps, tail...)
	return merged, true
}
