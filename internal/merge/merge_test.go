package merge

import (
	"math/rand"
	"testing"

	"repro/internal/advert"
	"repro/internal/dtddata"
	"repro/internal/subtree"
	"repro/internal/xpath"
)

func xp(s string) *xpath.XPE { return xpath.MustParse(s) }

func TestMergePositionwiseRule1(t *testing.T) {
	// Paper example: a/*/c/d and a/*/c/e merge to a/*/c/*.
	m, rule, ok := MergePositionwise([]*xpath.XPE{xp("a/*/c/d"), xp("a/*/c/e")}, 1, 0)
	if !ok || rule != RuleElement {
		t.Fatalf("merge failed: ok=%v rule=%v", ok, rule)
	}
	if m.String() != "a/*/c/*" {
		t.Errorf("merger = %s, want a/*/c/*", m)
	}
	// Figure 5: /a/b/a, /a/b/b, /a/b/d merge to /a/b/*.
	m, _, ok = MergePositionwise([]*xpath.XPE{xp("/a/b/a"), xp("/a/b/b"), xp("/a/b/d")}, 1, 0)
	if !ok || m.String() != "/a/b/*" {
		t.Errorf("three-way merger = %v (%v)", m, ok)
	}
}

func TestMergePositionwiseRule2(t *testing.T) {
	// Paper example: /a/c/*/* and /a//c/*/c merge to /a//c/*/*.
	m, rule, ok := MergePositionwise([]*xpath.XPE{xp("/a/c/*/*"), xp("/a//c/*/c")}, 1, 1)
	if !ok || rule != RuleOperator {
		t.Fatalf("merge failed: ok=%v rule=%v m=%v", ok, rule, m)
	}
	if m.String() != "/a//c/*/*" {
		t.Errorf("merger = %s, want /a//c/*/*", m)
	}
}

func TestMergePositionwiseRejections(t *testing.T) {
	tests := []struct {
		name string
		xpes []string
		e, o int
	}{
		{"covering pair", []string{"/a/b", "/a/*"}, 1, 1},
		{"identical", []string{"/a/b", "/a/b"}, 1, 1},
		{"different lengths", []string{"/a/b", "/a/b/c"}, 1, 1},
		{"different relativity", []string{"a/b", "/a/b"}, 1, 1},
		{"two element diffs", []string{"/a/b/c", "/a/x/y"}, 1, 1},
		{"op diff not allowed", []string{"/a/x/c", "/a/y//c"}, 1, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			xpes := make([]*xpath.XPE, len(tt.xpes))
			for i, s := range tt.xpes {
				xpes[i] = xp(s)
			}
			if _, _, ok := MergePositionwise(xpes, tt.e, tt.o); ok {
				t.Error("merge unexpectedly succeeded")
			}
		})
	}
}

func TestMergeInfix(t *testing.T) {
	// Rule 3: common prefix and suffix, differing middles replaced by "//".
	m, ok := MergeInfix(xp("/a/b/x/y/c/d"), xp("/a/b/q/c/d"), 4)
	if !ok {
		t.Fatal("infix merge failed")
	}
	if m.String() != "/a/b//c/d" {
		t.Errorf("merger = %s, want /a/b//c/d", m)
	}
	// Not enough common material.
	if _, ok := MergeInfix(xp("/a/x/y/z/q"), xp("/a/m/q"), 4); ok {
		t.Error("infix merge with too little common material succeeded")
	}
	// No differing middle: covering territory.
	if _, ok := MergeInfix(xp("/a/b/c"), xp("/a/b/c"), 2); ok {
		t.Error("identical expressions merged")
	}
}

// TestMergerCoversSources: any merger must cover each of its sources (its
// publication set contains theirs) — checked semantically on random paths.
func TestQuickMergerCoversSources(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	alphabet := []string{"a", "b", "c", "d"}
	randXPE := func() *xpath.XPE {
		n := 2 + r.Intn(4)
		s := &xpath.XPE{Relative: r.Intn(2) == 0}
		for i := 0; i < n; i++ {
			axis := xpath.Child
			if (i > 0 || !s.Relative) && r.Intn(5) == 0 {
				axis = xpath.Descendant
			}
			name := alphabet[r.Intn(len(alphabet))]
			if r.Intn(4) == 0 {
				name = xpath.Wildcard
			}
			s.Steps = append(s.Steps, xpath.Step{Axis: axis, Name: name})
		}
		return s
	}
	merges := 0
	for i := 0; i < 20000 && merges < 1500; i++ {
		s1, s2 := randXPE(), randXPE()
		m, _, ok := MergePositionwise([]*xpath.XPE{s1, s2}, 1, 1)
		if !ok {
			continue
		}
		merges++
		for j := 0; j < 30; j++ {
			n := 1 + r.Intn(8)
			p := make([]string, n)
			for k := range p {
				p[k] = alphabet[r.Intn(len(alphabet))]
			}
			if (s1.MatchesPath(p) || s2.MatchesPath(p)) && !m.MatchesPath(p) {
				t.Fatalf("merger %s of %s, %s misses path %v", m, s1, s2, p)
			}
		}
	}
	if merges < 100 {
		t.Errorf("only %d merges sampled", merges)
	}
}

func TestQuickInfixMergerCoversSources(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	alphabet := []string{"a", "b", "c"}
	randAbs := func() *xpath.XPE {
		n := 4 + r.Intn(4)
		s := &xpath.XPE{}
		for i := 0; i < n; i++ {
			s.Steps = append(s.Steps, xpath.Step{Axis: xpath.Child, Name: alphabet[r.Intn(len(alphabet))]})
		}
		return s
	}
	merges := 0
	for i := 0; i < 30000 && merges < 800; i++ {
		s1, s2 := randAbs(), randAbs()
		m, ok := MergeInfix(s1, s2, 3)
		if !ok {
			continue
		}
		merges++
		for j := 0; j < 20; j++ {
			n := 1 + r.Intn(10)
			p := make([]string, n)
			for k := range p {
				p[k] = alphabet[r.Intn(len(alphabet))]
			}
			if (s1.MatchesPath(p) || s2.MatchesPath(p)) && !m.MatchesPath(p) {
				t.Fatalf("infix merger %s of %s, %s misses path %v", m, s1, s2, p)
			}
		}
	}
	if merges < 50 {
		t.Errorf("only %d infix merges sampled", merges)
	}
}

func TestDegreeEstimator(t *testing.T) {
	advs, err := advert.Generate(dtddata.PSD())
	if err != nil {
		t.Fatal(err)
	}
	est := NewDegreeEstimator(advs, 10, 10000)
	if est.UniverseSize() == 0 {
		t.Fatal("empty universe")
	}
	// /ProteinDatabase/ProteinEntry/protein/name and .../alt-name merged to
	// .../*: protein has 3 children, so the merger admits 1 extra path out
	// of 3 — the paper's "false positives at the merged position" example.
	m := &Merger{
		Result: xp("/ProteinDatabase/ProteinEntry/protein/*"),
		Sources: []*xpath.XPE{
			xp("/ProteinDatabase/ProteinEntry/protein/name"),
			xp("/ProteinDatabase/ProteinEntry/protein/alt-name"),
		},
	}
	got := est.Degree(m)
	if got < 0.3 || got > 0.37 {
		t.Errorf("degree = %.2f, want 1/3", got)
	}
	// A merger absorbing all three children is perfect.
	perfect := &Merger{
		Result: xp("/ProteinDatabase/ProteinEntry/protein/*"),
		Sources: []*xpath.XPE{
			xp("/ProteinDatabase/ProteinEntry/protein/name"),
			xp("/ProteinDatabase/ProteinEntry/protein/alt-name"),
			xp("/ProteinDatabase/ProteinEntry/protein/contains"),
		},
	}
	if got := est.Degree(perfect); got != 0 {
		t.Errorf("perfect merger degree = %.3f, want 0", got)
	}
}

func TestPassPerfectOnly(t *testing.T) {
	advs, err := advert.Generate(dtddata.PSD())
	if err != nil {
		t.Fatal(err)
	}
	est := NewDegreeEstimator(advs, 10, 10000)
	tr := subtree.New()
	prefix := "/ProteinDatabase/ProteinEntry/protein/"
	for _, leaf := range []string{"name", "alt-name", "contains"} {
		tr.Insert(xp(prefix + leaf))
	}
	before := tr.Size()
	mergers := Pass(tr, Options{MaxDegree: 0, Estimator: est})
	if len(mergers) != 1 {
		t.Fatalf("mergers = %d, want 1", len(mergers))
	}
	if mergers[0].Result.String() != prefix+"*" {
		t.Errorf("merger = %s", mergers[0].Result)
	}
	if mergers[0].Degree != 0 {
		t.Errorf("degree = %.3f", mergers[0].Degree)
	}
	if tr.Size() != before-2 {
		t.Errorf("tree size %d, want %d", tr.Size(), before-2)
	}
}

func TestPassRespectsDegreeGate(t *testing.T) {
	advs, err := advert.Generate(dtddata.PSD())
	if err != nil {
		t.Fatal(err)
	}
	est := NewDegreeEstimator(advs, 10, 10000)
	tr := subtree.New()
	// Only two of the three protein children: imperfect (degree 1/3).
	tr.Insert(xp("/ProteinDatabase/ProteinEntry/protein/name"))
	tr.Insert(xp("/ProteinDatabase/ProteinEntry/protein/alt-name"))
	if got := Pass(tr, Options{MaxDegree: 0, Estimator: est}); len(got) != 0 {
		t.Fatalf("perfect-only pass merged an imperfect candidate (degree %.2f)", got[0].Degree)
	}
	got := Pass(tr, Options{MaxDegree: 0.4, Estimator: est})
	if len(got) != 1 {
		t.Fatalf("tolerant pass found %d mergers", len(got))
	}
}

func TestPassToFixpointCascades(t *testing.T) {
	tr := subtree.New()
	// Merging /a/b/{x,y} and /a/c/{x,y} yields /a/b/* and /a/c/*, which can
	// then merge to /a/*/* — only reachable through a second pass.
	for _, s := range []string{"/a/b/x", "/a/b/y", "/a/c/x", "/a/c/y"} {
		tr.Insert(xp(s))
	}
	mergers := PassToFixpoint(tr, Options{MaxDegree: 1})
	if len(mergers) < 3 {
		t.Fatalf("fixpoint applied %d mergers, want >= 3", len(mergers))
	}
	if tr.Lookup(xp("/a/*/*")) == nil {
		t.Errorf("cascaded merger missing:\n%s", tr)
	}
}

func BenchmarkDegree(b *testing.B) {
	advs, err := advert.Generate(dtddata.NITF())
	if err != nil {
		b.Fatal(err)
	}
	est := NewDegreeEstimator(advs, 10, 5000)
	m := &Merger{
		Result:  xp("/nitf/body/body.content/block/*"),
		Sources: []*xpath.XPE{xp("/nitf/body/body.content/block/p"), xp("/nitf/body/body.content/block/pre")},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Degree(m)
	}
}
