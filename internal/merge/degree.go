package merge

import (
	"sort"
	"strings"

	"repro/internal/advert"
)

// DegreeEstimator estimates the imperfect degree of a merger against the
// universe of publication paths a producer's advertisement set admits (the
// paper assumes brokers know the producer DTD; the advertisement set derived
// from it is an equivalent and more convenient carrier of the same
// information).
type DegreeEstimator struct {
	universe [][]string
}

// NewDegreeEstimator enumerates the publication-path universe: expansions of
// the advertisements up to maxLen elements, capped at maxPaths paths
// (deterministically, advertisement by advertisement).
func NewDegreeEstimator(advs []*advert.Advertisement, maxLen, maxPaths int) *DegreeEstimator {
	seen := make(map[string]bool)
	var universe [][]string
	for _, a := range advs {
		if len(universe) >= maxPaths {
			break
		}
		a.Expansions(maxLen, func(w []string) bool {
			key := strings.Join(w, "/")
			if !seen[key] {
				seen[key] = true
				universe = append(universe, w)
			}
			return len(universe) < maxPaths
		})
	}
	// Deterministic order independent of advertisement enumeration detail.
	sort.Slice(universe, func(i, j int) bool {
		return strings.Join(universe[i], "/") < strings.Join(universe[j], "/")
	})
	return &DegreeEstimator{universe: universe}
}

// UniverseSize returns the number of paths in the estimator's universe.
func (e *DegreeEstimator) UniverseSize() int { return len(e.universe) }

// Degree estimates D_imperfect = |P(m) − ∪P(si)| / |P(m)| over the
// enumerated universe, assuming uniformly distributed publications as the
// paper does. A merger matching nothing has degree 0.
func (e *DegreeEstimator) Degree(m *Merger) float64 {
	matched, extra := 0, 0
paths:
	for _, p := range e.universe {
		if !m.Result.MatchesPath(p) {
			continue
		}
		matched++
		for _, s := range m.Sources {
			if s.MatchesPath(p) {
				continue paths
			}
		}
		extra++
	}
	if matched == 0 {
		return 0
	}
	return float64(extra) / float64(matched)
}
