package merge

import (
	"sort"
	"strings"

	"repro/internal/subtree"
	"repro/internal/xpath"
)

// Options configures a merge pass over a subscription tree.
type Options struct {
	// MaxDegree is the highest imperfect degree a merger may have; 0 admits
	// only perfect mergers.
	MaxDegree float64
	// Estimator computes imperfect degrees. Required when MaxDegree-gated
	// merging is wanted; with a nil Estimator every candidate is treated as
	// degree 0 only if MaxDegree >= 1 (otherwise nothing merges).
	Estimator *DegreeEstimator
	// EnableInfix additionally applies rule 3 (prefix//suffix) to sibling
	// pairs. Off by default: the rule is aggressive and the paper applies
	// it only when "most parts" agree.
	EnableInfix bool
	// InfixMinCommon is the combined prefix+suffix length rule 3 requires
	// (default 4).
	InfixMinCommon int
	// MaxGroup caps how many subscriptions a single merger may absorb
	// (default unlimited).
	MaxGroup int
	// OnMerge, if non-nil, is invoked for every applied merger after the
	// merger node is inserted but before the source nodes are removed, so a
	// router can move per-subscription routing state (last hops, forwarding
	// records) from the sources to the merger.
	OnMerge func(m *Merger, sources []*subtree.Node, merger *subtree.Node)
}

// Pass runs one merging pass over the tree: for every node's child set it
// buckets siblings by shape (rules 1 and 2), merges groups whose estimated
// imperfect degree passes the gate, inserts the merger and removes the
// sources. It returns the mergers applied, so a router can translate them
// into unsubscriptions and a subscription.
//
// Merging children of the same parent is where the paper applies the rules:
// siblings have "a better chance to be merged".
func Pass(t *subtree.Tree, opts Options) []*Merger {
	var applied []*Merger
	// Collect parents first: applying a merger mutates child sets.
	parents := []*subtree.Node{nil} // nil stands for the virtual root
	t.Walk(func(n *subtree.Node) { parents = append(parents, n) })

	for _, parent := range parents {
		var siblings []*subtree.Node
		if parent == nil {
			siblings = t.TopLevel()
		} else {
			siblings = parent.Children()
		}
		if len(siblings) < 2 {
			continue
		}
		applied = append(applied, mergeSiblings(t, siblings, opts)...)
	}
	return applied
}

// PassToFixpoint repeats Pass until no merger applies, returning all mergers.
// Each pass may create new sibling groups (the paper notes mergers can
// introduce new covering relations), so a fixpoint maximises compaction.
func PassToFixpoint(t *subtree.Tree, opts Options) []*Merger {
	var all []*Merger
	for {
		batch := Pass(t, opts)
		all = append(all, batch...)
		if len(batch) == 0 {
			return all
		}
	}
}

// mergeSiblings applies rules 1/2 (and optionally 3) within one sibling set.
func mergeSiblings(t *subtree.Tree, siblings []*subtree.Node, opts Options) []*Merger {
	var applied []*Merger

	// Rule 1: bucket by the expression with one element test masked. All
	// members of a bucket differ only at that position.
	type group struct{ nodes []*subtree.Node }
	buckets := make(map[string]*group)
	for _, n := range siblings {
		x := n.XPE
		for i := range x.Steps {
			key := maskKey(x, i, false)
			g := buckets[key]
			if g == nil {
				g = &group{}
				buckets[key] = g
			}
			g.nodes = append(g.nodes, n)
		}
	}
	merged := make(map[*subtree.Node]bool)
	// Deterministic bucket order.
	keys := make([]string, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := buckets[k]
		if m := tryGroup(t, g.nodes, merged, opts, false); m != nil {
			applied = append(applied, m)
		}
	}

	// Rule 2: bucket by the expression with one element test and one
	// operator masked.
	buckets2 := make(map[string]*group)
	for _, n := range siblings {
		if merged[n] {
			continue
		}
		x := n.XPE
		for i := range x.Steps {
			for j := range x.Steps {
				key := maskKey2(x, i, j)
				g := buckets2[key]
				if g == nil {
					g = &group{}
					buckets2[key] = g
				}
				g.nodes = append(g.nodes, n)
			}
		}
	}
	keys = keys[:0]
	for k := range buckets2 {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := buckets2[k]
		if m := tryGroup(t, g.nodes, merged, opts, true); m != nil {
			applied = append(applied, m)
		}
	}

	// Rule 3 (optional): pairwise prefix//suffix merging.
	if opts.EnableInfix {
		minCommon := opts.InfixMinCommon
		if minCommon <= 0 {
			minCommon = 4
		}
		for i := 0; i < len(siblings); i++ {
			if merged[siblings[i]] {
				continue
			}
			for j := i + 1; j < len(siblings); j++ {
				if merged[siblings[j]] {
					continue
				}
				res, ok := MergeInfix(siblings[i].XPE, siblings[j].XPE, minCommon)
				if !ok {
					continue
				}
				m := &Merger{
					Result:  res,
					Sources: []*xpath.XPE{siblings[i].XPE, siblings[j].XPE},
					Rule:    RuleInfix,
				}
				if !degreeOK(m, opts) {
					continue
				}
				apply(t, m, []*subtree.Node{siblings[i], siblings[j]}, opts)
				merged[siblings[i]] = true
				merged[siblings[j]] = true
				applied = append(applied, m)
				break
			}
		}
	}
	return applied
}

// tryGroup merges the distinct, not-yet-merged members of a candidate
// bucket.
func tryGroup(t *subtree.Tree, nodes []*subtree.Node, merged map[*subtree.Node]bool, opts Options, allowOp bool) *Merger {
	var live []*subtree.Node
	seen := make(map[*subtree.Node]bool)
	for _, n := range nodes {
		if merged[n] || seen[n] {
			continue
		}
		seen[n] = true
		live = append(live, n)
	}
	if opts.MaxGroup > 0 && len(live) > opts.MaxGroup {
		live = live[:opts.MaxGroup]
	}
	if len(live) < 2 {
		return nil
	}
	xpes := make([]*xpath.XPE, len(live))
	for i, n := range live {
		xpes[i] = n.XPE
	}
	maxOp := 0
	if allowOp {
		maxOp = 1
	}
	res, rule, ok := MergePositionwise(xpes, 1, maxOp)
	if !ok {
		return nil
	}
	m := &Merger{Result: res, Sources: xpes, Rule: rule}
	if !degreeOK(m, opts) {
		return nil
	}
	apply(t, m, live, opts)
	for _, n := range live {
		merged[n] = true
	}
	return m
}

func degreeOK(m *Merger, opts Options) bool {
	if opts.Estimator == nil {
		return opts.MaxDegree >= 1
	}
	m.Degree = opts.Estimator.Degree(m)
	return m.Degree <= opts.MaxDegree+1e-12
}

// apply inserts the merger into the tree and removes the source nodes; the
// sources' subtrees end up under the merger (it covers them), matching the
// paper's description of merging in the subscription tree.
func apply(t *subtree.Tree, m *Merger, sources []*subtree.Node, opts Options) {
	res := t.Insert(m.Result)
	if opts.OnMerge != nil {
		opts.OnMerge(m, sources, res.Node)
	}
	for _, n := range sources {
		t.Remove(n)
	}
}

func maskKey(x *xpath.XPE, i int, maskOp bool) string {
	var b strings.Builder
	if x.Relative {
		b.WriteByte('r')
	}
	for j, st := range x.Steps {
		if maskOp && j == i {
			b.WriteByte('?')
		} else {
			b.WriteString(st.Axis.String())
		}
		if j == i {
			b.WriteByte(1)
		} else {
			b.WriteString(st.Name)
		}
	}
	return b.String()
}

// maskKey2 masks the element test at i and the operator at j.
func maskKey2(x *xpath.XPE, i, j int) string {
	var b strings.Builder
	if x.Relative {
		b.WriteByte('r')
	}
	for k, st := range x.Steps {
		if k == j {
			b.WriteByte('?')
		} else {
			b.WriteString(st.Axis.String())
		}
		if k == i {
			b.WriteByte(1)
		} else {
			b.WriteString(st.Name)
		}
	}
	return b.String()
}
