package xmlrouter

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/broker"
	"repro/internal/dtddata"
	"repro/internal/experiment"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/xmldoc"
)

// TestEmitLatencyBench is the CI bench-smoke for the latency observability
// layer: it routes a Table 1-style workload through one instrumented broker
// and writes per-stage publish-path quantiles as JSON to the file named by
// BENCH_LATENCY_OUT (skipped when unset, so the test costs nothing in a
// normal run). CI archives the file as BENCH_latency.json so stage-latency
// regressions are visible across commits.
func TestEmitLatencyBench(t *testing.T) {
	out := os.Getenv("BENCH_LATENCY_OUT")
	if out == "" {
		t.Skip("BENCH_LATENCY_OUT not set")
	}

	set, err := experiment.BuildCoveringSet(dtddata.NITF(), 2000, 0.9, 4)
	if err != nil {
		t.Fatal(err)
	}
	dg := gen.NewDocGenerator(dtddata.NITF(), 6)
	dg.AvgRepeat = 1.5
	var pubs []xmldoc.Publication
	for i := 0; i < 100; i++ {
		pubs = append(pubs, xmldoc.Extract(dg.Generate(), uint64(i))...)
	}

	reg := metrics.NewRegistry()
	br := broker.New(broker.Config{ID: "b1", UseCovering: true, Metrics: reg},
		func(to string, m *broker.Message) {})
	br.AddClient("sub")
	for _, x := range set.XPEs {
		br.HandleMessage(&broker.Message{Type: broker.MsgSubscribe, XPE: x}, "sub")
	}
	const n = 5000
	for i := 0; i < n; i++ {
		br.HandleMessage(&broker.Message{Type: broker.MsgPublish, Pub: pubs[i%len(pubs)]}, "producer")
	}

	type stageQuantiles struct {
		Stage string  `json:"stage"`
		Count int64   `json:"count"`
		P50   float64 `json:"p50_seconds"`
		P99   float64 `json:"p99_seconds"`
	}
	doc := struct {
		Subscriptions int              `json:"subscriptions"`
		Publications  int              `json:"publications"`
		Stages        []stageQuantiles `json:"stages"`
	}{Subscriptions: len(set.XPEs), Publications: n}
	for _, p := range reg.Export() {
		if p.Name != "xbroker_stage_seconds" || p.Histogram == nil {
			continue
		}
		doc.Stages = append(doc.Stages, stageQuantiles{
			Stage: p.Labels["stage"],
			Count: p.Histogram.Count,
			P50:   p.Histogram.Quantile(0.50),
			P99:   p.Histogram.Quantile(0.99),
		})
	}
	if len(doc.Stages) < 3 {
		t.Fatalf("only %d stage histograms populated", len(doc.Stages))
	}
	for _, s := range doc.Stages {
		if s.Count != n {
			t.Errorf("stage %s count = %d, want %d", s.Stage, s.Count, n)
		}
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d stages)", out, len(doc.Stages))
}
