package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/admin"
	"repro/internal/advert"
	"repro/internal/broker"
	"repro/internal/metrics"
	"repro/internal/slowlog"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// chain is a running 3-broker TCP chain with admin endpoints — the fixture
// behind the xtop acceptance test and the CI smoke run.
type chain struct {
	servers []*transport.Server
	rings   []*trace.Ring
	admins  []*httptest.Server
	targets []string // admin host:port addresses, b1..b3
	pub     *transport.Client
	sub     *transport.Client
}

// startChain boots b1—b2—b3, connects a publisher to b1 and a subscriber to
// b3, and waits for the control state to settle.
func startChain(t *testing.T) *chain {
	t.Helper()
	const n = 3
	c := &chain{
		servers: make([]*transport.Server, n),
		rings:   make([]*trace.Ring, n),
		admins:  make([]*httptest.Server, n),
		targets: make([]string, n),
	}
	addrs := make([]string, n)
	neighbors := make([]map[string]string, n)
	for i := range neighbors {
		neighbors[i] = make(map[string]string)
	}
	for i := 0; i < n; i++ {
		reg := metrics.NewRegistry()
		c.rings[i] = trace.NewRing(64)
		slow := slowlog.New(time.Nanosecond, 32) // capture everything measurable
		cfg := broker.Config{
			ID:                fmt.Sprintf("b%d", i+1),
			UseAdvertisements: true,
			UseCovering:       true,
			// Explicitly sharded so the acceptance test exercises the
			// partitioned matching engine and its /statusz surface (the
			// default tracks GOMAXPROCS, which may be 1 on small hosts).
			Shards:    2,
			Metrics:   reg,
			TraceSink: c.rings[i],
			SlowLog:   slow,
		}
		c.servers[i] = transport.NewServer(cfg, neighbors[i])
		addr, err := c.servers[i].Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
		t.Cleanup(c.servers[i].Close)
		srv := c.servers[i]
		c.admins[i] = httptest.NewServer(admin.Endpoints{
			Metrics: reg,
			Traces:  c.rings[i],
			Routes:  func() any { return srv.Broker().Routes() },
			Slow:    slow,
			Status: &admin.Status{
				Broker:   cfg.ID,
				Started:  time.Now(),
				Registry: reg,
				Links:    func() any { return srv.Links() },
				Queues:   srv.QueueDepths,
				Slow:     slow,
				Shards:   func() any { return srv.Broker().ShardStatus() },
			},
		}.Handler())
		t.Cleanup(c.admins[i].Close)
		c.targets[i] = strings.TrimPrefix(c.admins[i].URL, "http://")
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			neighbors[i][fmt.Sprintf("b%d", i)] = addrs[i-1]
			c.servers[i].Broker().AddNeighbor(fmt.Sprintf("b%d", i))
		}
		if i < n-1 {
			neighbors[i][fmt.Sprintf("b%d", i+2)] = addrs[i+1]
			c.servers[i].Broker().AddNeighbor(fmt.Sprintf("b%d", i+2))
		}
	}

	var err error
	if c.pub, err = transport.Dial(addrs[0], "pub"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.pub.Close)
	if c.sub, err = transport.Dial(addrs[2], "sub"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.sub.Close)

	if err := c.pub.Send(&broker.Message{Type: broker.MsgAdvertise, AdvID: "a1", Adv: advert.MustParse("/stock/quote/price")}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "advertisement flood", func() bool { return c.servers[2].SRTSize() == 1 })
	if err := c.sub.Send(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse("/stock")}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "subscription propagation", func() bool { return c.servers[0].PRTSize() == 1 })
	return c
}

// TestXtopThreeBrokerChain is the tentpole acceptance test: xtop -once
// -json against a live 3-broker chain reports per-broker stage-latency
// quantiles and link health, and a traced publication's per-hop stage
// durations account for (never exceed) the measured end-to-end latency.
func TestXtopThreeBrokerChain(t *testing.T) {
	c := startChain(t)

	// Drive some untraced load through the whole chain so every broker's
	// stage histograms have observations.
	for i := 0; i < 20; i++ {
		if err := c.pub.Send(&broker.Message{
			Type: broker.MsgPublish,
			Pub:  xmldoc.Publication{DocID: uint64(i), Path: []string{"stock", "quote", "price"}},
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.sub.WaitDelivery(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}

	// One traced publication, end-to-end latency measured at the subscriber
	// from the frame's own emission stamp (both clocks are this process).
	traceID := trace.NewID()
	if err := c.pub.Send(&broker.Message{
		Type:    broker.MsgPublish,
		Pub:     xmldoc.Publication{DocID: 999, Path: []string{"stock", "quote", "price"}},
		TraceID: traceID,
	}); err != nil {
		t.Fatal(err)
	}
	got, err := c.sub.WaitDelivery(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	e2e := time.Now().UnixNano() - got.Stamp
	if len(got.Hops) != 3 {
		t.Fatalf("delivered hop list = %+v, want 3 hops", got.Hops)
	}
	var stageSum int64
	for i, h := range got.Hops {
		if len(h.Stages) == 0 {
			t.Errorf("hop %d (%s) carries no stage durations", i, h.Broker)
		}
		for _, s := range h.Stages {
			if s.Nanos < 0 {
				t.Errorf("hop %d stage %s negative: %d", i, s.Stage, s.Nanos)
			}
		}
		if h.StageNanos(trace.StageMatch) == 0 && h.TotalStageNanos() == 0 {
			t.Errorf("hop %d (%s) all-zero stages", i, h.Broker)
		}
		stageSum += h.TotalStageNanos()
	}
	// The in-broker stage durations are a component of end-to-end latency;
	// they can never exceed it (all timings come from this process's
	// monotonic clock, so only scheduling — not clock skew — separates
	// them). A generous slack absorbs timer granularity.
	if slack := int64(time.Millisecond); stageSum > e2e+slack {
		t.Errorf("hop stage sum %dns exceeds end-to-end %dns", stageSum, e2e)
	}
	if stageSum <= 0 {
		t.Errorf("hop stage sum = %d, want > 0", stageSum)
	}

	// xtop -once -json: machine-readable cluster snapshot.
	var buf bytes.Buffer
	if code := run([]string{"-brokers", strings.Join(c.targets, ","), "-once", "-json"}, &buf); code != 0 {
		t.Fatalf("xtop -once -json exit %d:\n%s", code, buf.String())
	}
	var results []result
	if err := json.Unmarshal(buf.Bytes(), &results); err != nil {
		t.Fatalf("xtop JSON: %v:\n%s", err, buf.String())
	}
	if len(results) != 3 {
		t.Fatalf("xtop reported %d brokers, want 3", len(results))
	}
	sortResults(results)
	for i, r := range results {
		if r.Error != "" || r.Status == nil {
			t.Fatalf("broker %s unreachable: %s", r.Target, r.Error)
		}
		st := r.Status
		if want := fmt.Sprintf("b%d", i+1); st.Broker != want {
			t.Errorf("result %d broker = %s, want %s", i, st.Broker, want)
		}
		// Per-broker stage-latency quantiles: every broker matched
		// publications, so queue/match/filter/enqueue all have counts and
		// non-decreasing quantiles.
		byStage := make(map[string]stageQ)
		for _, s := range st.Stages {
			byStage[s.Stage] = s
		}
		for _, name := range []string{"queue", "match", "filter", "enqueue"} {
			s, ok := byStage[name]
			if !ok || s.Count == 0 {
				t.Errorf("%s: stage %q missing or empty: %+v", st.Broker, name, st.Stages)
				continue
			}
			if s.P50 < 0 || s.P90 < s.P50 || s.P99 < s.P90 {
				t.Errorf("%s: stage %q quantiles not monotone: %+v", st.Broker, name, s)
			}
		}
		// decode and flush are transport-side; brokers that received or
		// forwarded over TCP have them.
		if s := byStage["decode"]; s.Count == 0 {
			t.Errorf("%s: decode stage empty: %+v", st.Broker, st.Stages)
		}
		// Link health: ends see 1 up link, the middle sees 2.
		wantLinks := 1
		if i == 1 {
			wantLinks = 2
		}
		up := 0
		for _, l := range st.Links {
			if l.Up {
				up++
			}
		}
		if up != wantLinks {
			t.Errorf("%s: %d links up, want %d (%+v)", st.Broker, up, wantLinks, st.Links)
		}
		// The nanosecond-threshold flight recorder captured publications.
		if st.SlowTotal == 0 {
			t.Errorf("%s: slow_total = 0, want captures with 1ns threshold", st.Broker)
		}
		if st.Epoch == 0 {
			t.Errorf("%s: snapshot epoch = 0, want control-plane epochs", st.Broker)
		}
		// Per-shard matching-engine state: a 2-shard broker reports 2
		// anchored slots plus the wild slot, the subscription landed exactly
		// one entry somewhere, and the populated slot records the snapshot
		// epoch of its last rebuild.
		if len(st.Shards) != 3 {
			t.Fatalf("%s: shard slots = %d, want 3 (%+v)", st.Broker, len(st.Shards), st.Shards)
		}
		if st.Shards[2].Shard != "wild" {
			t.Errorf("%s: last slot = %q, want wild", st.Broker, st.Shards[2].Shard)
		}
		entries := 0
		for _, sh := range st.Shards {
			entries += sh.Entries
			if sh.Entries > 0 && sh.Epoch == 0 {
				t.Errorf("%s: populated shard %s has no rebuild epoch: %+v", st.Broker, sh.Shard, sh)
			}
		}
		if entries == 0 {
			t.Errorf("%s: no automaton entries across shards after subscription: %+v", st.Broker, st.Shards)
		}
	}

	// b1 and b2 forwarded over TCP, so their flush stage has observations.
	for _, r := range results[:2] {
		found := false
		for _, s := range r.Status.Stages {
			if s.Stage == "flush" && s.Count > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: flush stage empty after forwarding", r.Status.Broker)
		}
	}

	// The human table renders too (second poll also exercises client-side
	// rate computation inside one run call is not possible with -once; the
	// table must at least carry every broker row and the stage columns).
	buf.Reset()
	if code := run([]string{"-brokers", strings.Join(c.targets, ","), "-once"}, &buf); code != 0 {
		t.Fatalf("xtop -once exit %d:\n%s", code, buf.String())
	}
	table := buf.String()
	for _, want := range []string{"BROKER", "LINKS", "SHARDS", "b1", "b2", "b3", "match", "flush", "3:"} {
		if !strings.Contains(table, want) {
			t.Errorf("xtop table missing %q:\n%s", want, table)
		}
	}
}

func TestXtopNoBrokers(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-once"}, &buf); code != 2 {
		t.Errorf("run with no brokers = %d, want 2", code)
	}
}

func TestXtopUnreachable(t *testing.T) {
	var buf bytes.Buffer
	code := run([]string{"-brokers", "127.0.0.1:1", "-once", "-json", "-timeout", "200ms"}, &buf)
	if code != 1 {
		t.Errorf("run against dead target = %d, want 1:\n%s", code, buf.String())
	}
	var results []result
	if err := json.Unmarshal(buf.Bytes(), &results); err != nil || len(results) != 1 || results[0].Error == "" {
		t.Errorf("dead-target JSON should carry the error: %v\n%s", err, buf.String())
	}
}

func TestComputeRates(t *testing.T) {
	prev := &status{Counters: map[string]float64{"a": 10, "b": 5}}
	cur := &status{Counters: map[string]float64{"a": 30, "b": 3}}
	computeRates(cur, prev, 2*time.Second)
	if got := cur.RatesPerSec["a"]; got != 10 {
		t.Errorf("rate a = %v, want 10", got)
	}
	// b went backwards: counter reset, rate from the post-reset value.
	if got := cur.RatesPerSec["b"]; got != 1.5 {
		t.Errorf("rate b after reset = %v, want 1.5", got)
	}
	// No baseline: leave the server-side rates untouched.
	solo := &status{Counters: map[string]float64{"a": 1}, RatesPerSec: map[string]float64{"a": 42}}
	computeRates(solo, nil, time.Second)
	if solo.RatesPerSec["a"] != 42 {
		t.Errorf("rates overwritten without baseline")
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}
