// Command xtop is a cluster-wide terminal dashboard for the dissemination
// network: it polls each broker's /statusz admin endpoint and renders a
// refreshing table of throughput rates, per-stage publish-path latency
// quantiles, link health, queue depths, and flight-recorder activity — the
// operator's one-screen answer to "is the overlay healthy and where is the
// latency".
//
//	xtop -brokers 127.0.0.1:9001,127.0.0.1:9002,127.0.0.1:9003
//
// With -once the dashboard renders a single frame and exits; with -once
// -json it emits the raw per-broker status documents instead — the mode CI
// smoke tests and scripts consume.
//
// Rates are computed client-side from counter deltas between consecutive
// polls (counter resets — a restarted broker — surface as a rate computed
// from the post-reset value, never as a negative rate), so xtop does not
// disturb any other scraper's server-side rate baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

// stageOrder fixes the column order of the stage table: the publish
// pipeline's own order.
var stageOrder = []string{"decode", "queue", "match", "filter", "enqueue", "flush"}

// linkInfo mirrors transport.LinkStatus's JSON.
type linkInfo struct {
	Peer       string  `json:"peer"`
	Up         bool    `json:"up"`
	QueueDepth int     `json:"queue_depth"`
	Buffered   int     `json:"buffered"`
	Codec      string  `json:"codec"`
	TxBytes    int64   `json:"tx_bytes"`
	BatchP50   float64 `json:"batch_p50"`
}

// stageQ mirrors admin.StageQuantiles's JSON.
type stageQ struct {
	Stage string  `json:"stage"`
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// shardInfo mirrors broker.ShardStatus's JSON.
type shardInfo struct {
	Shard            string  `json:"shard"`
	Entries          int     `json:"entries"`
	States           int     `json:"states"`
	Epoch            uint64  `json:"epoch"`
	LastBuildSeconds float64 `json:"last_build_seconds"`
}

// status mirrors admin.StatusSnapshot's JSON.
type status struct {
	Broker               string             `json:"broker"`
	UnixNano             int64              `json:"unix_nano"`
	UptimeSeconds        float64            `json:"uptime_seconds"`
	Epoch                uint64             `json:"epoch"`
	Counters             map[string]float64 `json:"counters"`
	Gauges               map[string]float64 `json:"gauges"`
	RatesPerSec          map[string]float64 `json:"rates_per_sec"`
	Stages               []stageQ           `json:"stages"`
	Links                []linkInfo         `json:"links"`
	Queues               map[string]int     `json:"queues"`
	SlowTotal            int64              `json:"slow_total"`
	SlowThresholdSeconds float64            `json:"slow_threshold_seconds"`
	Shards               []shardInfo        `json:"shards"`
}

// result is one poll of one broker.
type result struct {
	Target string  `json:"target"`
	Error  string  `json:"error,omitempty"`
	Status *status `json:"status,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("xtop", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		brokers  = fs.String("brokers", "", "comma-separated broker admin addresses (host:port)")
		interval = fs.Duration("interval", 2*time.Second, "poll interval in live mode")
		once     = fs.Bool("once", false, "render one frame and exit")
		jsonOut  = fs.Bool("json", false, "with -once: emit raw per-broker status JSON instead of the table")
		timeout  = fs.Duration("timeout", 2*time.Second, "per-request HTTP timeout")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	targets := splitTargets(*brokers)
	if len(targets) == 0 {
		fmt.Fprintln(out, "xtop: no brokers given (use -brokers host:port,host:port,...)")
		return 2
	}
	client := &http.Client{Timeout: *timeout}

	prev := make(map[string]*status) // previous poll, for client-side rates
	var prevAt time.Time
	poll := func() []result {
		now := time.Now()
		results := make([]result, len(targets))
		for i, t := range targets {
			results[i] = pollOne(client, t)
		}
		for _, r := range results {
			if r.Status != nil {
				computeRates(r.Status, prev[r.Target], now.Sub(prevAt))
				prev[r.Target] = r.Status
			}
		}
		prevAt = now
		return results
	}

	if *once {
		results := poll()
		if *jsonOut {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			enc.Encode(results)
		} else {
			render(out, results, false)
		}
		for _, r := range results {
			if r.Error == "" {
				return 0 // at least one broker answered
			}
		}
		return 1
	}

	// Live mode: redraw forever. The first frame has no rate baseline, so
	// poll once, wait a beat, and start rendering with real rates.
	poll()
	for {
		time.Sleep(*interval)
		render(out, poll(), true)
	}
}

// splitTargets parses the -brokers list, tolerating empty elements.
func splitTargets(spec string) []string {
	var out []string
	for _, t := range strings.Split(spec, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// pollOne fetches one broker's /statusz.
func pollOne(client *http.Client, target string) result {
	url := target
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	resp, err := client.Get(url + "/statusz")
	if err != nil {
		return result{Target: target, Error: err.Error()}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return result{Target: target, Error: fmt.Sprintf("status %d", resp.StatusCode)}
	}
	var st status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return result{Target: target, Error: err.Error()}
	}
	return result{Target: target, Status: &st}
}

// computeRates overwrites the status's rate map with client-side deltas
// against the previous poll. A counter that went backwards is a reset: the
// delta is the current value (the standard counter-reset convention). With
// no previous poll the rates stay as the server reported them.
func computeRates(cur, prev *status, dt time.Duration) {
	if prev == nil || dt <= 0 {
		return
	}
	rates := make(map[string]float64, len(cur.Counters))
	for k, v := range cur.Counters {
		d := v - prev.Counters[k]
		if d < 0 {
			d = v
		}
		rates[k] = d / dt.Seconds()
	}
	cur.RatesPerSec = rates
}

// render draws the two dashboard tables; clear prefixes the ANSI
// home+erase sequence for live refreshing.
func render(out io.Writer, results []result, clear bool) {
	var b strings.Builder
	if clear {
		b.WriteString("\x1b[H\x1b[2J")
	}
	fmt.Fprintf(&b, "xtop — %s\n\n", time.Now().Format("15:04:05"))

	// Overview table.
	tw := newTable(&b, "BROKER", "TARGET", "UP", "EPOCH", "PUB/S", "DLV/S", "LINKS", "WIRE", "QMAX", "SLOW", "SHARDS", "LAG")
	for _, r := range results {
		if r.Status == nil {
			tw.row("?", r.Target, "DOWN", "-", "-", "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		st := r.Status
		up, total := 0, len(st.Links)
		for _, l := range st.Links {
			if l.Up {
				up++
			}
		}
		qmax := 0
		for _, d := range st.Queues {
			if d > qmax {
				qmax = d
			}
		}
		tw.row(
			st.Broker,
			r.Target,
			formatUptime(st.UptimeSeconds),
			fmt.Sprint(st.Epoch),
			formatRate(rateOf(st, `xbroker_msgs_in_total{type="publish"}`)),
			formatRate(rateOf(st, "xbroker_deliveries_total")),
			fmt.Sprintf("%d/%d", up, total),
			formatWire(st),
			fmt.Sprint(qmax),
			fmt.Sprint(st.SlowTotal),
			formatShards(st.Shards),
			formatLag(st),
		)
	}
	tw.flush()

	// Stage-latency table: p50/p99 per pipeline stage.
	b.WriteString("\nstage latency p50 / p99\n")
	cols := append([]string{"BROKER"}, stageOrder...)
	tw = newTable(&b, cols...)
	for _, r := range results {
		if r.Status == nil {
			continue
		}
		byStage := make(map[string]stageQ, len(r.Status.Stages))
		for _, s := range r.Status.Stages {
			byStage[s.Stage] = s
		}
		row := []string{r.Status.Broker}
		for _, name := range stageOrder {
			s, ok := byStage[name]
			if !ok || s.Count == 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, formatDur(s.P50)+" / "+formatDur(s.P99))
		}
		tw.row(row...)
	}
	tw.flush()
	io.WriteString(out, b.String())
}

// rateOf reads one counter's rate, trying the exact series key first and
// falling back to a bare-name match (labelled series keys embed the
// rendered label string).
func rateOf(st *status, key string) float64 {
	if v, ok := st.RatesPerSec[key]; ok {
		return v
	}
	for k, v := range st.RatesPerSec {
		if strings.HasPrefix(k, key) {
			return v
		}
	}
	return -1
}

// formatShards summarises the matching engine's shard vector as
// "slots:entries" — e.g. "9:1204" for an 8-shard broker (8 anchored slots
// plus the wild slot) holding 1204 automaton entries. "-" when the broker
// runs without the shared NFA or predates the shard surface.
func formatShards(shards []shardInfo) string {
	if len(shards) == 0 {
		return "-"
	}
	entries := 0
	for _, s := range shards {
		entries += s.Entries
	}
	return fmt.Sprintf("%d:%d", len(shards), entries)
}

// formatLag renders the worst durable-subscription replay backlog — the
// xbroker_publog_lag gauge, the maximum last-logged-minus-acked distance
// across durable names. "-" when the broker runs without a publication log
// (the gauge is absent); "0" is the healthy steady state: every durable
// subscriber attached and acked up to date.
func formatLag(st *status) string {
	v, ok := st.Gauges["xbroker_publog_lag"]
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.0f", v)
}

// formatWire summarises the neighbour links' wire state: the negotiated
// codec (or codecs, mid-rollout), the worst median frames-per-flush across
// up links, and the outbound byte rate from the xbroker_wire_tx_bytes_total
// counters.
func formatWire(st *status) string {
	codecs := []string{}
	batch := 0.0
	for _, l := range st.Links {
		if !l.Up || l.Codec == "" {
			continue
		}
		seen := false
		for _, c := range codecs {
			if c == l.Codec {
				seen = true
			}
		}
		if !seen {
			codecs = append(codecs, l.Codec)
		}
		if l.BatchP50 > batch {
			batch = l.BatchP50
		}
	}
	if len(codecs) == 0 {
		return "-"
	}
	sort.Strings(codecs)
	out := strings.Join(codecs, "+")
	if batch > 0 {
		out += fmt.Sprintf(" b%.0f", batch)
	}
	// The tx-bytes counter is labelled per codec; sum the series so the
	// rate stays truthful mid-rollout when both codecs carry traffic.
	rate := 0.0
	for k, v := range st.RatesPerSec {
		if strings.HasPrefix(k, "xbroker_wire_tx_bytes_total") && v > 0 {
			rate += v
		}
	}
	if rate > 0 {
		out += " " + formatBytesRate(rate)
	}
	return out
}

// formatBytesRate renders a bytes-per-second rate with a binary unit.
func formatBytesRate(v float64) string {
	switch {
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMB/s", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKB/s", v/(1<<10))
	default:
		return fmt.Sprintf("%.0fB/s", v)
	}
}

func formatRate(v float64) string {
	if v < 0 {
		return "-"
	}
	if v >= 100 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.1f", v)
}

// formatDur renders a seconds value with a duration unit that keeps three
// digits of precision.
func formatDur(seconds float64) string {
	d := time.Duration(seconds * float64(time.Second))
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func formatUptime(seconds float64) string {
	d := time.Duration(seconds * float64(time.Second)).Round(time.Second)
	if d < time.Minute {
		return d.String()
	}
	return d.Round(time.Minute).String()
}

// table is a minimal column-aligned text table.
type table struct {
	w    io.Writer
	cols []string
	rows [][]string
}

func newTable(w io.Writer, cols ...string) *table {
	return &table{w: w, cols: cols}
}

func (t *table) row(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *table) flush() {
	width := make([]int, len(t.cols))
	for i, c := range t.cols {
		width[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && cellWidth(c) > width[i] {
				width[i] = cellWidth(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, 0, len(cells))
		for i, c := range cells {
			if i < len(width) {
				c += strings.Repeat(" ", width[i]-cellWidth(c))
			}
			parts = append(parts, c)
		}
		fmt.Fprintln(t.w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.cols)
	for _, r := range t.rows {
		line(r)
	}
	t.rows = t.rows[:0]
}

// cellWidth counts display columns, not bytes — the µ in µs is two bytes
// wide in UTF-8 but one column on screen.
func cellWidth(s string) int {
	n := 0
	for range s {
		n++
	}
	return n
}

// sortResults orders by broker ID, unreachable targets last — used by tests
// for deterministic assertions and by render callers indirectly via target
// order being stable anyway.
func sortResults(rs []result) {
	sort.SliceStable(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if (a.Status == nil) != (b.Status == nil) {
			return a.Status != nil
		}
		if a.Status != nil && b.Status != nil {
			return a.Status.Broker < b.Status.Broker
		}
		return a.Target < b.Target
	})
}
