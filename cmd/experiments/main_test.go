package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunFig6Small is the end-to-end smoke test: a tiny fig6 run through the
// real flag surface must print the figure's table.
func TestRunFig6Small(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "300", "-seed", "2", "fig6"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "Figure 6") {
		t.Errorf("output does not mention Figure 6:\n%s", got)
	}
	if !strings.Contains(got, "300") {
		t.Errorf("output does not reach the requested N=300:\n%s", got)
	}
}

func TestRunRejectsBadInvocations(t *testing.T) {
	cases := [][]string{
		{},                     // missing experiment name
		{"fig6", "fig7"},       // too many names
		{"nonesuch"},           // unknown experiment
		{"-bogusflag", "tab1"}, // unknown flag
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%q) succeeded, want error", args)
		}
	}
}
