// Command experiments regenerates the paper's tables and figures. Each
// subcommand runs one experiment at a configurable scale and prints the
// corresponding table; "all" runs the full evaluation.
//
// Usage:
//
//	experiments [flags] {fig6|fig7|fig8|tab1|tab2|tab3|fig9|fig10|fig11|all}
//
// Flags scale the workloads; the defaults complete in minutes on a laptop,
// --full approaches the paper's scale (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		}
		os.Exit(2)
	}
}

// run executes one experiments invocation, writing tables to out. It is the
// whole program behind flag parsing, factored out for testing.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		full = fs.Bool("full", false, "run at (close to) the paper's scale")
		n    = fs.Int("n", 0, "override the XPE count of table-size experiments")
		seed = fs.Int64("seed", 0, "override the workload seed")
	)
	fs.Usage = func() {
		fmt.Fprintf(out, "usage: experiments [flags] {fig6|fig7|fig8|tab1|tab2|tab3|fig9|fig10|fig11|all}\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one experiment name")
	}

	scaleN := 6000
	netSubs, netDocs := 250, 50
	if *full {
		// 20,000 is the practical ceiling of the embedded corpora's query
		// space for the low-overlap set; see EXPERIMENTS.md on scale.
		scaleN = 20000
		netSubs, netDocs = 1000, 50
	}
	if *n > 0 {
		scaleN = *n
	}

	runners := map[string]func() error{
		"fig6": func() error {
			res, err := experiment.RunFig6(experiment.Fig6Options{N: scaleN, Seed: *seed})
			return show(out, res, err)
		},
		"fig7": func() error {
			res, err := experiment.RunFig7(experiment.Fig7Options{N: scaleN, Seed: *seed})
			return show(out, res, err)
		},
		"fig8": func() error {
			res, err := experiment.RunFig8(experiment.Fig8Options{Seed: *seed})
			return show(out, res, err)
		},
		"tab1": func() error {
			res, err := experiment.RunTable1(experiment.Table1Options{N: scaleN, Seed: *seed})
			return show(out, res, err)
		},
		"tab2": func() error {
			res, err := experiment.RunNetwork(experiment.NetworkOptions{
				Levels: 3, SubsPerSubscriber: netSubs, Docs: netDocs, Seed: *seed,
			})
			return show(out, res, err)
		},
		"tab3": func() error {
			subs := netSubs
			if !*full && subs > 100 {
				subs = 100 // 64 subscribers; keep the default run snappy
			}
			res, err := experiment.RunNetwork(experiment.NetworkOptions{
				Levels: 7, SubsPerSubscriber: subs, Docs: netDocs / 5, Seed: *seed,
			})
			return show(out, res, err)
		},
		"fig9": func() error {
			res, err := experiment.RunFig9(experiment.Fig9Options{Seed: *seed})
			return show(out, res, err)
		},
		"fig10": func() error {
			res, err := experiment.RunFig10(experiment.DelayOptions{Seed: *seed})
			return show(out, res, err)
		},
		"fig11": func() error {
			res, err := experiment.RunFig11(experiment.DelayOptions{Seed: *seed})
			return show(out, res, err)
		},
	}

	name := fs.Arg(0)
	if name == "all" {
		for _, id := range []string{"fig6", "fig7", "fig8", "tab1", "tab2", "tab3", "fig9", "fig10", "fig11"} {
			start := time.Now()
			fmt.Fprintf(out, "=== %s ===\n", id)
			if err := runners[id](); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			fmt.Fprintf(out, "(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
		return nil
	}
	runner, ok := runners[name]
	if !ok {
		fs.Usage()
		return fmt.Errorf("unknown experiment %q", name)
	}
	if err := runner(); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	return nil
}

// tabler is any experiment result that renders as a table.
type tabler interface{ Table() *experiment.Table }

func show(out io.Writer, res tabler, err error) error {
	if err != nil {
		return err
	}
	fmt.Fprintln(out, res.Table())
	return nil
}
