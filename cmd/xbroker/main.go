// Command xbroker runs one content-based XML router over TCP — the
// deployable broker of the dissemination network.
//
// Example 3-broker chain on one machine:
//
//	xbroker -id b1 -listen :7001 -admin 127.0.0.1:9001 -neighbors b2=localhost:7002
//	xbroker -id b2 -listen :7002 -admin 127.0.0.1:9002 -neighbors b1=localhost:7001,b3=localhost:7003
//	xbroker -id b3 -listen :7003 -admin 127.0.0.1:9003 -neighbors b2=localhost:7002
//
// Strategy flags select the paper's routing optimisations. The opt-in
// admin listener serves /metrics (Prometheus), /statusz (the machine-
// readable status snapshot xtop polls), /debug/traces (per-hop publication
// traces), /debug/routes (routing-table dump), /debug/slow (the slow-
// publication flight recorder), and /debug/pprof; it is unauthenticated,
// so bind it to localhost.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/admin"
	"repro/internal/broker"
	"repro/internal/metrics"
	"repro/internal/publog"
	"repro/internal/slowlog"
	"repro/internal/trace"
	"repro/internal/transport"
)

func main() {
	var (
		id        = flag.String("id", "b1", "broker identifier")
		listen    = flag.String("listen", ":7001", "TCP listen address")
		adminAddr = flag.String("admin", "", "admin HTTP address for /metrics, /debug/traces, /debug/routes, /debug/pprof (empty disables; unauthenticated — bind localhost)")
		neighbors = flag.String("neighbors", "", "comma-separated id=addr neighbour list")
		useAdv    = flag.Bool("adv", true, "advertisement-based subscription routing")
		useCov    = flag.Bool("cov", true, "covering-based table compaction")
		merging   = flag.String("merge", "off", "merging mode: off|perfect|imperfect")
		degree    = flag.Float64("degree", 0.1, "imperfect-merging degree tolerance")
		streaming = flag.Bool("streaming", true, "streaming SAX-path matching for document publications (false = parse and decompose into paths first)")
		shards    = flag.Int("shards", 0, "matching-engine shards: control changes recompile only the affected shard (0 = GOMAXPROCS, 1 = single monolithic automaton)")
		parallel  = flag.Int("parallel-match", 0, "fan a decomposed document's paths across cores when it has at least this many (0 disables; only affects -streaming=false)")
		statsEach = flag.Duration("stats", 30*time.Second, "stats logging interval (0 disables)")
		traceBuf  = flag.Int("tracebuf", 1024, "trace events retained in the in-memory ring")

		slowThreshold = flag.Duration("slow-threshold", 50*time.Millisecond, "in-broker latency above which a publication is captured by the flight recorder (0 disables)")
		slowBuf       = flag.Int("slowbuf", 256, "slow publications retained in the flight recorder")

		heartbeat    = flag.Duration("heartbeat", 5*time.Second, "heartbeat interval on idle neighbour links (0 disables dead-peer detection)")
		deadAfter    = flag.Duration("dead-after", 0, "silence after which a neighbour link is declared dead (default 3x heartbeat)")
		reconnectMin = flag.Duration("reconnect-min", 0, "initial reconnect backoff for lost neighbour links (default 50ms)")
		reconnectMax = flag.Duration("reconnect-max", 0, "reconnect backoff ceiling (default 2s)")
		retryBuffer  = flag.Int("retry-buffer", 0, "control messages buffered per neighbour across outages (default 1024)")
		dialBudget   = flag.Int("dial-budget", 0, "consecutive failed dials before a link goes dormant until new control traffic (0 = unlimited)")

		durableDir    = flag.String("durable-dir", "", "publication-log directory for durable subscriptions (empty disables durability)")
		fsyncInterval = flag.Duration("fsync-interval", 5*time.Millisecond, "publication-log group-commit interval: how long an appended record may wait for its fsync while the batch grows (0 = fsync per drained batch)")
		retention     = flag.Int64("retention", 0, "force-reclaim the oldest closed log segments once the publication log exceeds this many bytes, even unacknowledged ones (0 = reclaim only fully-acknowledged segments)")
		retainAge     = flag.Duration("retain-age", 0, "force-reclaim closed log segments older than this (0 = never by age)")

		wire           = flag.String("wire", "binary", "neighbour/client wire codec: binary (zero-copy batched frames) or gob (legacy fallback; a binary offer from the peer is negotiated down)")
		flushInterval  = flag.Duration("flush-interval", 0, "how long a queued publication may linger to grow its batch (0 = flush opportunistically, no added latency)")
		maxBatchBytes  = flag.Int("max-batch-bytes", 0, "flush a neighbour batch once it holds this many bytes (default 256KiB)")
		maxBatchFrames = flag.Int("max-batch-frames", 0, "flush a neighbour batch once it holds this many frames (default 128)")
	)
	flag.Parse()

	nb, err := parseNeighbors(*neighbors)
	if err != nil {
		log.Fatalf("xbroker: %v", err)
	}
	reg := metrics.NewRegistry()
	ring := trace.NewRing(*traceBuf)
	var slow *slowlog.Log
	if *slowThreshold > 0 {
		slow = slowlog.New(*slowThreshold, *slowBuf)
		// Every capture is also a structured log line, so slow publications
		// are diagnosable from the broker's log alone.
		slow.Logger = func(e slowlog.Entry) { log.Printf("slow publication %s", e) }
	}
	var store *publog.Store
	if *durableDir != "" {
		store, err = publog.Open(*durableDir, publog.Options{
			FsyncInterval: *fsyncInterval,
			RetainBytes:   *retention,
			RetainAge:     *retainAge,
		})
		if err != nil {
			log.Fatalf("xbroker: durable log: %v", err)
		}
		store.RegisterMetrics(reg)
		defer store.Close()
	}
	cfg := broker.Config{
		ID:                 *id,
		UseAdvertisements:  *useAdv,
		UseCovering:        *useCov,
		ImperfectDegree:    *degree,
		DisableStreaming:   !*streaming,
		Shards:             *shards,
		ParallelMatchPaths: *parallel,
		Metrics:            reg,
		TraceSink:          ring,
		SlowLog:            slow,
	}
	if store != nil {
		cfg.Durable = store
	}
	switch *merging {
	case "off":
		cfg.Merging = broker.MergeOff
	case "perfect":
		cfg.Merging = broker.MergePerfect
	case "imperfect":
		cfg.Merging = broker.MergeImperfect
	default:
		log.Fatalf("xbroker: unknown merging mode %q", *merging)
	}

	if *wire != transport.WireBinary && *wire != transport.WireGob {
		log.Fatalf("xbroker: unknown wire codec %q (want binary or gob)", *wire)
	}
	srv := transport.NewServerOptions(cfg, nb, transport.Options{
		Heartbeat:      *heartbeat,
		DeadAfter:      *deadAfter,
		ReconnectMin:   *reconnectMin,
		ReconnectMax:   *reconnectMax,
		RetryBuffer:    *retryBuffer,
		DialBudget:     *dialBudget,
		Wire:           *wire,
		FlushInterval:  *flushInterval,
		MaxBatchBytes:  *maxBatchBytes,
		MaxBatchFrames: *maxBatchFrames,
	})
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("xbroker: %v", err)
	}
	log.Printf("broker %s listening on %s (%d neighbours, strategy %s)",
		*id, addr, len(nb), cfg.StrategyName())
	if store != nil {
		log.Printf("durable subscriptions enabled, publication log in %s (fsync every %v)", *durableDir, *fsyncInterval)
	}

	if *adminAddr != "" {
		status := &admin.Status{
			Broker:   *id,
			Started:  time.Now(),
			Registry: reg,
			Links:    func() any { return srv.Links() },
			Queues:   srv.QueueDepths,
			Slow:     slow,
			Shards:   func() any { return srv.Broker().ShardStatus() },
		}
		if store != nil {
			status.Publog = func() any { return store.Status() }
		}
		h := admin.Endpoints{
			Metrics: reg,
			Traces:  ring,
			Routes:  func() any { return srv.Broker().Routes() },
			Slow:    slow,
			Status:  status,
		}.Handler()
		bound, stopAdmin, err := admin.Serve(*adminAddr, h)
		if err != nil {
			log.Fatalf("xbroker: admin: %v", err)
		}
		defer stopAdmin()
		log.Printf("admin endpoints on http://%s/metrics (unauthenticated — keep it private)", bound)
	}

	if *statsEach > 0 {
		go func() {
			for range time.Tick(*statsEach) {
				log.Printf("stats %s", statsLine(reg))
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	// Flush a final snapshot so post-mortem logs carry the closing counts.
	log.Printf("final stats %s", statsLine(reg))
	log.Printf("broker %s shutting down", *id)
	srv.Close()
}

// statsLine renders the registry as one key=value log line.
func statsLine(reg *metrics.Registry) string {
	var b strings.Builder
	reg.WriteKeyValue(&b)
	return b.String()
}

func parseNeighbors(spec string) (map[string]string, error) {
	out := make(map[string]string)
	if spec == "" {
		return out, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return nil, fmt.Errorf("bad neighbour %q (want id=addr)", part)
		}
		out[kv[0]] = kv[1]
	}
	return out, nil
}
