// Command xbroker runs one content-based XML router over TCP — the
// deployable broker of the dissemination network.
//
// Example 3-broker chain on one machine:
//
//	xbroker -id b1 -listen :7001 -neighbors b2=localhost:7002
//	xbroker -id b2 -listen :7002 -neighbors b1=localhost:7001,b3=localhost:7003
//	xbroker -id b3 -listen :7003 -neighbors b2=localhost:7002
//
// Strategy flags select the paper's routing optimisations.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/broker"
	"repro/internal/transport"
)

func main() {
	var (
		id        = flag.String("id", "b1", "broker identifier")
		listen    = flag.String("listen", ":7001", "TCP listen address")
		neighbors = flag.String("neighbors", "", "comma-separated id=addr neighbour list")
		useAdv    = flag.Bool("adv", true, "advertisement-based subscription routing")
		useCov    = flag.Bool("cov", true, "covering-based table compaction")
		merging   = flag.String("merge", "off", "merging mode: off|perfect|imperfect")
		degree    = flag.Float64("degree", 0.1, "imperfect-merging degree tolerance")
		statsEach = flag.Duration("stats", 30*time.Second, "stats logging interval (0 disables)")
	)
	flag.Parse()

	nb, err := parseNeighbors(*neighbors)
	if err != nil {
		log.Fatalf("xbroker: %v", err)
	}
	cfg := broker.Config{
		ID:                *id,
		UseAdvertisements: *useAdv,
		UseCovering:       *useCov,
		ImperfectDegree:   *degree,
	}
	switch *merging {
	case "off":
		cfg.Merging = broker.MergeOff
	case "perfect":
		cfg.Merging = broker.MergePerfect
	case "imperfect":
		cfg.Merging = broker.MergeImperfect
	default:
		log.Fatalf("xbroker: unknown merging mode %q", *merging)
	}

	srv := transport.NewServer(cfg, nb)
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("xbroker: %v", err)
	}
	log.Printf("broker %s listening on %s (%d neighbours, adv=%v cov=%v merge=%s)",
		*id, addr, len(nb), *useAdv, *useCov, *merging)

	if *statsEach > 0 {
		go func() {
			for range time.Tick(*statsEach) {
				st := srv.Stats()
				log.Printf("stats: PRT=%d SRT=%d delivered=%d falsePositives=%d in=%v",
					srv.PRTSize(), srv.SRTSize(), st.Deliveries, st.FalsePositives, st.MsgsIn)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("broker %s shutting down", *id)
	srv.Close()
}

func parseNeighbors(spec string) (map[string]string, error) {
	out := make(map[string]string)
	if spec == "" {
		return out, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return nil, fmt.Errorf("bad neighbour %q (want id=addr)", part)
		}
		out[kv[0]] = kv[1]
	}
	return out, nil
}
