package main

import (
	"reflect"
	"testing"

	"repro/internal/metrics"
)

// TestStatsLine pins the structured key=value shape of the periodic stats
// log (and the final SIGTERM snapshot, which uses the same renderer).
func TestStatsLine(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("xbroker_deliveries_total", "").Add(12)
	reg.Gauge("xbroker_prt_subscriptions", "").Set(3)
	got := statsLine(reg)
	want := "xbroker_deliveries_total=12 xbroker_prt_subscriptions=3"
	if got != want {
		t.Errorf("statsLine = %q, want %q", got, want)
	}
}

func TestParseNeighbors(t *testing.T) {
	tests := []struct {
		in      string
		want    map[string]string
		wantErr bool
	}{
		{"", map[string]string{}, false},
		{"b2=host:7001", map[string]string{"b2": "host:7001"}, false},
		{"b2=h:1, b3=g:2", map[string]string{"b2": "h:1", "b3": "g:2"}, false},
		{"b2", nil, true},
		{"=addr", nil, true},
		{"b2=", nil, true},
	}
	for _, tt := range tests {
		got, err := parseNeighbors(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseNeighbors(%q) error = %v", tt.in, err)
			continue
		}
		if err == nil && !reflect.DeepEqual(got, tt.want) {
			t.Errorf("parseNeighbors(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}
