package main

import (
	"reflect"
	"testing"
)

func TestParseNeighbors(t *testing.T) {
	tests := []struct {
		in      string
		want    map[string]string
		wantErr bool
	}{
		{"", map[string]string{}, false},
		{"b2=host:7001", map[string]string{"b2": "host:7001"}, false},
		{"b2=h:1, b3=g:2", map[string]string{"b2": "h:1", "b3": "g:2"}, false},
		{"b2", nil, true},
		{"=addr", nil, true},
		{"b2=", nil, true},
	}
	for _, tt := range tests {
		got, err := parseNeighbors(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseNeighbors(%q) error = %v", tt.in, err)
			continue
		}
		if err == nil && !reflect.DeepEqual(got, tt.want) {
			t.Errorf("parseNeighbors(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}
