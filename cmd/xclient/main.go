// Command xclient is a publisher/subscriber endpoint for a TCP broker
// network.
//
// Subscribe and wait for deliveries:
//
//	xclient -connect localhost:7003 -id sub1 -subscribe "/nitf/body//p"
//
// Advertise a DTD and publish documents:
//
//	xclient -connect localhost:7001 -id pub1 -advertise-dtd news.dtd
//	xclient -connect localhost:7001 -id pub1 -publish article.xml
//
// The built-in corpora are available as "-advertise-dtd nitf" and
// "-advertise-dtd psd".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/advert"
	"repro/internal/broker"
	"repro/internal/dtd"
	"repro/internal/dtddata"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintf(os.Stderr, "xclient: %v\n", err)
		}
		os.Exit(1)
	}
}

// run executes one xclient invocation (one of advertise, publish, or
// subscribe-and-wait), writing progress and deliveries to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("xclient", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		connect      = fs.String("connect", "localhost:7001", "broker address")
		id           = fs.String("id", "client1", "client identifier")
		subscribe    = fs.String("subscribe", "", "XPath subscription; waits for deliveries")
		publish      = fs.String("publish", "", "XML file to publish as a document")
		advertiseDTD = fs.String("advertise-dtd", "", "DTD file (or 'nitf'/'psd') whose advertisements to flood")
		wait         = fs.Duration("wait", 0, "how long to wait for deliveries (0 = forever)")
		raw          = fs.Bool("raw", false, "publish the file as raw XML bytes so brokers route it with the streaming matcher (no tree is ever built)")
		traced       = fs.Bool("trace", false, "stamp the publication with a trace ID for per-hop tracing (query /debug/traces on the brokers)")
		reconnect    = fs.Bool("reconnect", false, "redial a lost broker connection with backoff and replay subscriptions/advertisements")
		durable      = fs.String("durable", "", "durable subscription name: the broker logs matches under this name while disconnected and replays the unacknowledged gap on reattach (requires a broker started with -durable-dir)")
		noAck        = fs.Bool("no-ack", false, "with -durable, do not auto-acknowledge deliveries (the unacked window then replays on every reattach)")
		wire         = fs.String("wire", "binary", "wire codec to offer the broker: binary or gob (the broker may negotiate binary down)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}

	if *wire != transport.WireBinary && *wire != transport.WireGob {
		return fmt.Errorf("unknown wire codec %q (want binary or gob)", *wire)
	}
	c, err := transport.DialOptions(*connect, *id, transport.ClientOptions{
		Reconnect: *reconnect,
		Wire:      *wire,
		Durable:   *durable,
		AutoAck:   *durable != "" && !*noAck,
	})
	if err != nil {
		return err
	}
	defer c.Close()

	switch {
	case *advertiseDTD != "":
		d, err := loadDTD(*advertiseDTD)
		if err != nil {
			return err
		}
		advs, err := advert.Generate(d)
		if err != nil {
			return err
		}
		for i, a := range advs {
			msg := &broker.Message{Type: broker.MsgAdvertise, AdvID: fmt.Sprintf("%s-a%d", *id, i), Adv: a}
			if err := c.Send(msg); err != nil {
				return fmt.Errorf("advertise: %w", err)
			}
		}
		fmt.Fprintf(out, "advertised %d path patterns from %s\n", len(advs), *advertiseDTD)

	case *publish != "":
		data, err := os.ReadFile(*publish)
		if err != nil {
			return err
		}
		// Parse locally even for -raw: a malformed document would be
		// silently dropped by the first broker, so fail fast here instead.
		doc, err := xmldoc.Parse(data)
		if err != nil {
			return err
		}
		msg := &broker.Message{Type: broker.MsgPublish}
		if *raw {
			msg.Raw = data
		} else {
			msg.Doc = doc
		}
		if *traced {
			msg.TraceID = trace.NewID()
		}
		if err := c.Send(msg); err != nil {
			return fmt.Errorf("publish: %w", err)
		}
		form := ""
		if *raw {
			form = ", raw"
		}
		fmt.Fprintf(out, "published %s (%d bytes, %d paths%s)%s\n",
			*publish, doc.Size(), len(doc.Paths()), form, traceNote(msg.TraceID))

	case *subscribe != "":
		x, err := xpath.Parse(*subscribe)
		if err != nil {
			return err
		}
		if err := c.Send(&broker.Message{Type: broker.MsgSubscribe, XPE: x}); err != nil {
			return fmt.Errorf("subscribe: %w", err)
		}
		if *durable != "" {
			fmt.Fprintf(out, "subscribed to %s as durable %q; waiting for documents\n", x, *durable)
		} else {
			fmt.Fprintf(out, "subscribed to %s; waiting for documents\n", x)
		}
		deadline := make(<-chan time.Time)
		if *wait > 0 {
			deadline = time.After(*wait)
		}
		for {
			select {
			case m, ok := <-c.Deliveries:
				if !ok {
					return fmt.Errorf("connection closed")
				}
				switch m.Type {
				case broker.MsgReplayBegin:
					fmt.Fprintf(out, "replay begins from seq %d\n", m.Seq)
				case broker.MsgReplayEnd:
					fmt.Fprintf(out, "replay complete through seq %d\n", m.Seq)
				default:
					printDelivery(out, m)
				}
			case <-deadline:
				return nil
			}
		}

	default:
		fs.Usage()
		return fmt.Errorf("one of -subscribe, -publish, -advertise-dtd is required")
	}
	return nil
}

func loadDTD(name string) (*dtd.DTD, error) {
	switch name {
	case "nitf":
		return dtddata.NITF(), nil
	case "psd":
		return dtddata.PSD(), nil
	}
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	return dtd.Parse(string(data))
}

func printDelivery(out io.Writer, m *broker.Message) {
	delay := ""
	if m.Durable != "" {
		delay = fmt.Sprintf(" seq=%d", m.Seq)
	}
	if m.Stamp != 0 {
		delay += fmt.Sprintf(" (delay %v)", time.Since(time.Unix(0, m.Stamp)).Round(time.Microsecond))
	}
	switch {
	case m.Doc != nil:
		fmt.Fprintf(out, "received document <%s> with %d paths%s%s\n", m.Doc.Root.Name, len(m.Doc.Paths()), delay, hopNote(m))
	case len(m.Raw) > 0:
		// Raw bodies arrive as the publisher's bytes; parse locally for a
		// readable summary (brokers validated it while routing).
		if doc, err := xmldoc.Parse(m.Raw); err == nil {
			fmt.Fprintf(out, "received raw document <%s> (%d bytes, %d paths)%s%s\n",
				doc.Root.Name, len(m.Raw), len(doc.Paths()), delay, hopNote(m))
		} else {
			fmt.Fprintf(out, "received raw document (%d bytes)%s%s\n", len(m.Raw), delay, hopNote(m))
		}
	default:
		fmt.Fprintf(out, "received %s%s%s\n", m.Pub, delay, hopNote(m))
	}
	printHopStages(out, m)
}

// printHopStages breaks a traced delivery's end-to-end latency down by hop
// and stage: one indented line per broker with its in-broker stage
// durations, then the total in-broker time versus the wall-clock end-to-end
// delay — the difference is network transit plus inter-broker queueing.
func printHopStages(out io.Writer, m *broker.Message) {
	if m.TraceID == "" {
		return
	}
	var inBroker int64
	for _, h := range m.Hops {
		if len(h.Stages) == 0 {
			continue
		}
		fmt.Fprintf(out, "  hop %s:", h.Broker)
		for _, s := range h.Stages {
			fmt.Fprintf(out, " %s=%v", s.Stage, time.Duration(s.Nanos))
		}
		total := h.TotalStageNanos()
		inBroker += total
		fmt.Fprintf(out, " (in-broker %v)\n", time.Duration(total))
	}
	if inBroker == 0 {
		return
	}
	line := fmt.Sprintf("  in-broker total %v", time.Duration(inBroker))
	if m.Stamp != 0 {
		e2e := time.Since(time.Unix(0, m.Stamp))
		line += fmt.Sprintf(" of %v end-to-end (rest is transit)", e2e.Round(time.Microsecond))
	}
	fmt.Fprintln(out, line)
}

// hopNote renders a traced delivery's broker path, e.g. " via b1>b2>b3".
func hopNote(m *broker.Message) string {
	if len(m.Hops) == 0 {
		return ""
	}
	ids := make([]string, len(m.Hops))
	for i, h := range m.Hops {
		ids[i] = h.Broker
	}
	return " via " + strings.Join(ids, ">")
}

func traceNote(id string) string {
	if id == "" {
		return ""
	}
	return " trace=" + id
}
