// Command xclient is a publisher/subscriber endpoint for a TCP broker
// network.
//
// Subscribe and wait for deliveries:
//
//	xclient -connect localhost:7003 -id sub1 -subscribe "/nitf/body//p"
//
// Advertise a DTD and publish documents:
//
//	xclient -connect localhost:7001 -id pub1 -advertise-dtd news.dtd
//	xclient -connect localhost:7001 -id pub1 -publish article.xml
//
// The built-in corpora are available as "-advertise-dtd nitf" and
// "-advertise-dtd psd".
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/advert"
	"repro/internal/broker"
	"repro/internal/dtd"
	"repro/internal/dtddata"
	"repro/internal/transport"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

func main() {
	var (
		connect      = flag.String("connect", "localhost:7001", "broker address")
		id           = flag.String("id", "client1", "client identifier")
		subscribe    = flag.String("subscribe", "", "XPath subscription; waits for deliveries")
		publish      = flag.String("publish", "", "XML file to publish as a document")
		advertiseDTD = flag.String("advertise-dtd", "", "DTD file (or 'nitf'/'psd') whose advertisements to flood")
		wait         = flag.Duration("wait", 0, "how long to wait for deliveries (0 = forever)")
	)
	flag.Parse()

	c, err := transport.Dial(*connect, *id)
	if err != nil {
		log.Fatalf("xclient: %v", err)
	}
	defer c.Close()

	switch {
	case *advertiseDTD != "":
		d, err := loadDTD(*advertiseDTD)
		if err != nil {
			log.Fatalf("xclient: %v", err)
		}
		advs, err := advert.Generate(d)
		if err != nil {
			log.Fatalf("xclient: %v", err)
		}
		for i, a := range advs {
			msg := &broker.Message{Type: broker.MsgAdvertise, AdvID: fmt.Sprintf("%s-a%d", *id, i), Adv: a}
			if err := c.Send(msg); err != nil {
				log.Fatalf("xclient: advertise: %v", err)
			}
		}
		log.Printf("advertised %d path patterns from %s", len(advs), *advertiseDTD)

	case *publish != "":
		data, err := os.ReadFile(*publish)
		if err != nil {
			log.Fatalf("xclient: %v", err)
		}
		doc, err := xmldoc.Parse(data)
		if err != nil {
			log.Fatalf("xclient: %v", err)
		}
		if err := c.Send(&broker.Message{Type: broker.MsgPublish, Doc: doc}); err != nil {
			log.Fatalf("xclient: publish: %v", err)
		}
		log.Printf("published %s (%d bytes, %d paths)", *publish, doc.Size(), len(doc.Paths()))

	case *subscribe != "":
		x, err := xpath.Parse(*subscribe)
		if err != nil {
			log.Fatalf("xclient: %v", err)
		}
		if err := c.Send(&broker.Message{Type: broker.MsgSubscribe, XPE: x}); err != nil {
			log.Fatalf("xclient: subscribe: %v", err)
		}
		log.Printf("subscribed to %s; waiting for documents", x)
		deadline := make(<-chan time.Time)
		if *wait > 0 {
			deadline = time.After(*wait)
		}
		for {
			select {
			case m, ok := <-c.Deliveries:
				if !ok {
					log.Fatal("xclient: connection closed")
				}
				printDelivery(m)
			case <-deadline:
				return
			}
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func loadDTD(name string) (*dtd.DTD, error) {
	switch name {
	case "nitf":
		return dtddata.NITF(), nil
	case "psd":
		return dtddata.PSD(), nil
	}
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	return dtd.Parse(string(data))
}

func printDelivery(m *broker.Message) {
	delay := ""
	if m.Stamp != 0 {
		delay = fmt.Sprintf(" (delay %v)", time.Since(time.Unix(0, m.Stamp)).Round(time.Microsecond))
	}
	if m.Doc != nil {
		log.Printf("received document <%s> with %d paths%s", m.Doc.Root.Name, len(m.Doc.Paths()), delay)
		return
	}
	log.Printf("received %s%s", m.Pub, delay)
}
