package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/transport"
)

func startBroker(t *testing.T) (*transport.Server, string) {
	t.Helper()
	srv := transport.NewServer(broker.Config{ID: "b1", UseCovering: true}, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(srv.Close)
	return srv, addr
}

// TestSubscribePublishEndToEnd drives the real CLI surface against an
// in-process broker: one invocation subscribes and waits, a second publishes
// a document file, and the subscriber must print the delivery.
func TestSubscribePublishEndToEnd(t *testing.T) {
	srv, addr := startBroker(t)

	file := filepath.Join(t.TempDir(), "doc.xml")
	if err := os.WriteFile(file, []byte("<a><b>hello</b><c/></a>"), 0o644); err != nil {
		t.Fatal(err)
	}

	var subOut bytes.Buffer
	subDone := make(chan error, 1)
	go func() {
		subDone <- run([]string{"-connect", addr, "-id", "sub1", "-subscribe", "/a//b", "-wait", "2s"}, &subOut)
	}()

	// The publish must not race the subscription registration.
	deadline := time.Now().Add(5 * time.Second)
	for srv.PRTSize() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription never reached the broker")
		}
		time.Sleep(5 * time.Millisecond)
	}

	var pubOut bytes.Buffer
	if err := run([]string{"-connect", addr, "-id", "pub1", "-publish", file}, &pubOut); err != nil {
		t.Fatalf("publish run: %v", err)
	}
	if !strings.Contains(pubOut.String(), "published ") {
		t.Errorf("publish output:\n%s", pubOut.String())
	}

	if err := <-subDone; err != nil {
		t.Fatalf("subscribe run: %v", err)
	}
	got := subOut.String()
	if !strings.Contains(got, "subscribed to /a//b") {
		t.Errorf("missing subscribe acknowledgement:\n%s", got)
	}
	if !strings.Contains(got, "received ") {
		t.Errorf("subscriber printed no delivery:\n%s", got)
	}
}

// TestAdvertiseDTD advertises a built-in corpus.
func TestAdvertiseDTD(t *testing.T) {
	_, addr := startBroker(t)
	var out bytes.Buffer
	if err := run([]string{"-connect", addr, "-id", "pub1", "-advertise-dtd", "nitf"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "advertised ") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunRejectsBadInvocations(t *testing.T) {
	_, addr := startBroker(t)
	for _, args := range [][]string{
		{"-connect", addr}, // no action selected
		{"-connect", addr, "-subscribe", "not a [ valid"}, // bad XPE
		{"-connect", addr, "-publish", "no-such-file.xml"},
		{"-bogus"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%q) succeeded, want error", args)
		}
	}
}

// TestTracedPublishPrintsPath drives a traced publication through a single
// broker and checks that both ends surface the trace: the publisher prints
// the trace ID, the subscriber prints the broker path.
func TestTracedPublishPrintsPath(t *testing.T) {
	srv, addr := startBroker(t)

	file := filepath.Join(t.TempDir(), "doc.xml")
	if err := os.WriteFile(file, []byte("<a><b>hi</b></a>"), 0o644); err != nil {
		t.Fatal(err)
	}

	var subOut bytes.Buffer
	subDone := make(chan error, 1)
	go func() {
		subDone <- run([]string{"-connect", addr, "-id", "sub1", "-subscribe", "/a", "-wait", "2s"}, &subOut)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.PRTSize() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription never reached the broker")
		}
		time.Sleep(5 * time.Millisecond)
	}

	var pubOut bytes.Buffer
	if err := run([]string{"-connect", addr, "-id", "pub1", "-publish", file, "-trace"}, &pubOut); err != nil {
		t.Fatalf("publish run: %v", err)
	}
	if !strings.Contains(pubOut.String(), "trace=") {
		t.Errorf("publisher output missing trace ID:\n%s", pubOut.String())
	}
	if err := <-subDone; err != nil {
		t.Fatalf("subscribe run: %v", err)
	}
	if !strings.Contains(subOut.String(), "via b1") {
		t.Errorf("subscriber output missing hop path:\n%s", subOut.String())
	}
	// The traced delivery also prints the per-hop stage breakdown and the
	// in-broker versus end-to-end split.
	for _, want := range []string{"hop b1:", "match=", "in-broker", "end-to-end"} {
		if !strings.Contains(subOut.String(), want) {
			t.Errorf("subscriber output missing %q:\n%s", want, subOut.String())
		}
	}
}
