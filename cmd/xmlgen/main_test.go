package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/xmldoc"
)

// TestRunStdout generates documents to the output writer and checks they are
// well-formed XML with the requested DTD's root.
func TestRunStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dtd", "nitf", "-n", "2", "-seed", "3"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	docs := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(docs) != 2 {
		t.Fatalf("got %d documents, want 2:\n%s", len(docs), out.String())
	}
	for i, s := range docs {
		doc, err := xmldoc.Parse([]byte(s))
		if err != nil {
			t.Fatalf("document %d does not parse: %v\n%s", i, err, s)
		}
		if doc.Root.Name != "nitf" {
			t.Errorf("document %d root = %q, want nitf", i, doc.Root.Name)
		}
	}
}

// TestRunOutDir writes documents into a directory.
func TestRunOutDir(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-dtd", "psd", "-n", "3", "-out", dir}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "psd-*.xml"))
	if err != nil || len(files) != 3 {
		t.Fatalf("wrote %d files (%v), want 3", len(files), err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xmldoc.Parse(data); err != nil {
		t.Errorf("%s does not parse: %v", files[0], err)
	}
	if !strings.Contains(out.String(), "wrote ") {
		t.Errorf("missing progress output:\n%s", out.String())
	}
}

func TestRunRejectsBadInvocations(t *testing.T) {
	for _, args := range [][]string{
		{"-dtd", "no-such-file.dtd"},
		{"-bogus"},
		{"stray-arg"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%q) succeeded, want error", args)
		}
	}
}
