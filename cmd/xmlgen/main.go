// Command xmlgen generates XML documents conforming to a DTD, in the style
// of the IBM XML Generator the paper uses.
//
//	xmlgen -dtd psd -n 5 -size 10240 -out docs/
//
// With -out "", documents are written to stdout separated by newlines.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/dtd"
	"repro/internal/dtddata"
	"repro/internal/gen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintf(os.Stderr, "xmlgen: %v\n", err)
		}
		os.Exit(1)
	}
}

// run executes one xmlgen invocation. Documents (with -out "") and progress
// lines are written to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("xmlgen", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		dtdName = fs.String("dtd", "psd", "DTD: 'nitf', 'psd', or a file path")
		n       = fs.Int("n", 1, "number of documents")
		size    = fs.Int("size", 0, "target size in bytes (0 = natural size)")
		levels  = fs.Int("levels", 10, "maximum nesting depth")
		repeat  = fs.Float64("repeat", 1, "mean extra repetitions for *,+ particles")
		seed    = fs.Int64("seed", 1, "random seed")
		outDir  = fs.String("out", "", "output directory (empty = stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}

	d, err := loadDTD(*dtdName)
	if err != nil {
		return err
	}
	g := gen.NewDocGenerator(d, *seed)
	g.MaxLevels = *levels
	g.AvgRepeat = *repeat

	for i := 0; i < *n; i++ {
		doc := g.Generate()
		if *size > 0 {
			doc, err = g.GenerateSized(*size)
			if err != nil {
				return err
			}
		}
		data := doc.Marshal()
		if *outDir == "" {
			fmt.Fprintf(out, "%s\n", data)
			continue
		}
		name := filepath.Join(*outDir, fmt.Sprintf("%s-%03d.xml", *dtdName, i))
		if err := os.WriteFile(name, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%d bytes, %d paths)\n", name, len(data), len(doc.Paths()))
	}
	return nil
}

func loadDTD(name string) (*dtd.DTD, error) {
	switch name {
	case "nitf":
		return dtddata.NITF(), nil
	case "psd":
		return dtddata.PSD(), nil
	}
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	return dtd.Parse(string(data))
}
