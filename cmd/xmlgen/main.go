// Command xmlgen generates XML documents conforming to a DTD, in the style
// of the IBM XML Generator the paper uses.
//
//	xmlgen -dtd psd -n 5 -size 10240 -out docs/
//
// With -out "", documents are written to stdout separated by newlines.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/dtd"
	"repro/internal/dtddata"
	"repro/internal/gen"
)

func main() {
	var (
		dtdName = flag.String("dtd", "psd", "DTD: 'nitf', 'psd', or a file path")
		n       = flag.Int("n", 1, "number of documents")
		size    = flag.Int("size", 0, "target size in bytes (0 = natural size)")
		levels  = flag.Int("levels", 10, "maximum nesting depth")
		repeat  = flag.Float64("repeat", 1, "mean extra repetitions for *,+ particles")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "", "output directory (empty = stdout)")
	)
	flag.Parse()

	d, err := loadDTD(*dtdName)
	if err != nil {
		log.Fatalf("xmlgen: %v", err)
	}
	g := gen.NewDocGenerator(d, *seed)
	g.MaxLevels = *levels
	g.AvgRepeat = *repeat

	for i := 0; i < *n; i++ {
		doc := g.Generate()
		if *size > 0 {
			doc, err = g.GenerateSized(*size)
			if err != nil {
				log.Fatalf("xmlgen: %v", err)
			}
		}
		data := doc.Marshal()
		if *out == "" {
			fmt.Printf("%s\n", data)
			continue
		}
		name := filepath.Join(*out, fmt.Sprintf("%s-%03d.xml", *dtdName, i))
		if err := os.WriteFile(name, data, 0o644); err != nil {
			log.Fatalf("xmlgen: %v", err)
		}
		log.Printf("wrote %s (%d bytes, %d paths)", name, len(data), len(doc.Paths()))
	}
}

func loadDTD(name string) (*dtd.DTD, error) {
	switch name {
	case "nitf":
		return dtddata.NITF(), nil
	case "psd":
		return dtddata.PSD(), nil
	}
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	return dtd.Parse(string(data))
}
