package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/xpath"
)

// TestRunEmitsParseableDistinctExpressions checks the generated workload
// line-by-line: the requested count, every line re-parses, no duplicates.
func TestRunEmitsParseableDistinctExpressions(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dtd", "nitf", "-n", "25", "-w", "0.3", "-seed", "5"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 25 {
		t.Fatalf("got %d expressions, want 25", len(lines))
	}
	seen := make(map[string]bool)
	for _, line := range lines {
		x, err := xpath.Parse(line)
		if err != nil {
			t.Fatalf("line %q does not parse: %v", line, err)
		}
		if seen[x.Key()] {
			t.Errorf("duplicate expression %q", line)
		}
		seen[x.Key()] = true
	}
}

func TestRunRejectsBadInvocations(t *testing.T) {
	for _, args := range [][]string{
		{"-dtd", "no-such-file.dtd"},
		{"-bogus"},
		{"stray-arg"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%q) succeeded, want error", args)
		}
	}
}
