// Command xpathgen emits random XPath subscription workloads derived from a
// DTD, in the style of the generator of Diao et al. that the paper uses.
//
//	xpathgen -dtd nitf -n 1000 -w 0.2 -do 0.1 > queries.txt
package main

import (
	"bufio"
	"flag"
	"log"
	"os"

	"repro/internal/dtd"
	"repro/internal/dtddata"
	"repro/internal/gen"
)

func main() {
	var (
		dtdName = flag.String("dtd", "nitf", "DTD: 'nitf', 'psd', or a file path")
		n       = flag.Int("n", 1000, "number of distinct expressions")
		w       = flag.Float64("w", 0.2, "wildcard probability per step")
		do      = flag.Float64("do", 0.1, "descendant-operator probability per step")
		maxLen  = flag.Int("maxlen", 10, "maximum expression length")
		minLen  = flag.Int("minlen", 1, "minimum expression length")
		rel     = flag.Float64("rel", 0, "relative-expression probability")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	d, err := loadDTD(*dtdName)
	if err != nil {
		log.Fatalf("xpathgen: %v", err)
	}
	g := gen.NewXPathGenerator(d, *w, *do, *seed)
	g.MaxLen = *maxLen
	g.MinLen = *minLen
	g.Relative = *rel
	xs, err := g.GenerateDistinct(*n)
	if err != nil {
		log.Fatalf("xpathgen: %v", err)
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	for _, x := range xs {
		if _, err := out.WriteString(x.String() + "\n"); err != nil {
			log.Fatalf("xpathgen: %v", err)
		}
	}
}

func loadDTD(name string) (*dtd.DTD, error) {
	switch name {
	case "nitf":
		return dtddata.NITF(), nil
	case "psd":
		return dtddata.PSD(), nil
	}
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	return dtd.Parse(string(data))
}
