// Command xpathgen emits random XPath subscription workloads derived from a
// DTD, in the style of the generator of Diao et al. that the paper uses.
//
//	xpathgen -dtd nitf -n 1000 -w 0.2 -do 0.1 > queries.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/dtd"
	"repro/internal/dtddata"
	"repro/internal/gen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintf(os.Stderr, "xpathgen: %v\n", err)
		}
		os.Exit(1)
	}
}

// run executes one xpathgen invocation, writing one expression per line to
// out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("xpathgen", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		dtdName = fs.String("dtd", "nitf", "DTD: 'nitf', 'psd', or a file path")
		n       = fs.Int("n", 1000, "number of distinct expressions")
		w       = fs.Float64("w", 0.2, "wildcard probability per step")
		do      = fs.Float64("do", 0.1, "descendant-operator probability per step")
		maxLen  = fs.Int("maxlen", 10, "maximum expression length")
		minLen  = fs.Int("minlen", 1, "minimum expression length")
		rel     = fs.Float64("rel", 0, "relative-expression probability")
		seed    = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}

	d, err := loadDTD(*dtdName)
	if err != nil {
		return err
	}
	g := gen.NewXPathGenerator(d, *w, *do, *seed)
	g.MaxLen = *maxLen
	g.MinLen = *minLen
	g.Relative = *rel
	xs, err := g.GenerateDistinct(*n)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(out)
	for _, x := range xs {
		if _, err := bw.WriteString(x.String() + "\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func loadDTD(name string) (*dtd.DTD, error) {
	switch name {
	case "nitf":
		return dtddata.NITF(), nil
	case "psd":
		return dtddata.PSD(), nil
	}
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	return dtd.Parse(string(data))
}
