// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 5). Each benchmark runs the corresponding experiment at a reduced
// default scale and reports the figure's headline quantity as custom
// metrics, so `go test -bench` output shows the reproduced shape; the
// cmd/experiments binary prints the full tables (use --full for
// paper-scale runs). EXPERIMENTS.md records paper-vs-measured values.
package xmlrouter

import (
	"testing"

	"repro/internal/experiment"
)

// BenchmarkFig6RoutingTableSize — Figure 6: routing table size with and
// without covering on high- and low-overlap subscription sets.
func BenchmarkFig6RoutingTableSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig6(experiment.Fig6Options{N: 4000, Checkpoints: 4})
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.N) - 1
		b.ReportMetric(reduction(res.CoveringA[last], res.NoCovering[last]), "reductionA%")
		b.ReportMetric(reduction(res.CoveringB[last], res.NoCovering[last]), "reductionB%")
	}
}

// BenchmarkFig7Merging — Figure 7: further table compaction from perfect
// and imperfect merging.
func BenchmarkFig7Merging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig7(experiment.Fig7Options{N: 4000, Checkpoints: 4})
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.N) - 1
		b.ReportMetric(float64(res.Covering[last]), "tableCov")
		b.ReportMetric(float64(res.PerfectMerging[last]), "tablePM")
		b.ReportMetric(float64(res.ImperfectMerging[last]), "tableIPM")
	}
}

// BenchmarkFig8XPEProcessing — Figure 8: per-XPE processing time with and
// without covering, NITF vs PSD.
func BenchmarkFig8XPEProcessing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig8(experiment.Fig8Options{N: 2000, BatchSize: 500})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(mean(res.NITFCov), "nitfCovMs")
		b.ReportMetric(mean(res.NITFNoCov), "nitfNoCovMs")
		b.ReportMetric(mean(res.PSDCov), "psdCovMs")
		b.ReportMetric(mean(res.PSDNoCov), "psdNoCovMs")
	}
}

// BenchmarkTable1PublicationRouting — Table 1: per-publication routing time
// under the four methods.
func BenchmarkTable1PublicationRouting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunTable1(experiment.Table1Options{N: 4000, Docs: 60})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SetA.NoCovering, "A-noCovMs")
		b.ReportMetric(res.SetA.Covering, "A-covMs")
		b.ReportMetric(res.SetA.ImperfectMerging, "A-ipmMs")
		b.ReportMetric(res.SetB.Covering, "B-covMs")
	}
}

// BenchmarkTable2SevenBrokers — Table 2: traffic and delay in the 7-broker
// tree under the six routing strategies.
func BenchmarkTable2SevenBrokers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunNetwork(experiment.NetworkOptions{
			Levels: 3, SubsPerSubscriber: 120, Docs: 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		reportTraffic(b, res)
	}
}

// BenchmarkTable3Network127 — Table 3: the 127-broker overlay.
func BenchmarkTable3Network127(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunNetwork(experiment.NetworkOptions{
			Levels: 7, SubsPerSubscriber: 30, Docs: 6,
		})
		if err != nil {
			b.Fatal(err)
		}
		reportTraffic(b, res)
	}
}

// BenchmarkFig9FalsePositives — Figure 9: in-network false positives vs the
// tolerated imperfect degree.
func BenchmarkFig9FalsePositives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig9(experiment.Fig9Options{
			Subs: 400, Docs: 20, Degrees: []float64{0, 0.1, 0.2},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Points[0].FalsePositivePct, "fp%@D0")
		b.ReportMetric(res.Points[1].FalsePositivePct, "fp%@D0.1")
		b.ReportMetric(res.Points[2].FalsePositivePct, "fp%@D0.2")
	}
}

// BenchmarkFig10PSDDelay — Figure 10: PSD notification delay vs hops.
func BenchmarkFig10PSDDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig10(experiment.DelayOptions{
			DocBytes: []int{2 << 10, 20 << 10}, Hops: []int{2, 6},
			DocsPerSize: 3, SubsPerSubscriber: 150,
		})
		if err != nil {
			b.Fatal(err)
		}
		reportDelay(b, res)
	}
}

// BenchmarkFig11NITFDelay — Figure 11: NITF notification delay vs hops.
func BenchmarkFig11NITFDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig11(experiment.DelayOptions{
			DocBytes: []int{2 << 10, 40 << 10}, Hops: []int{2, 6},
			DocsPerSize: 3, SubsPerSubscriber: 150,
		})
		if err != nil {
			b.Fatal(err)
		}
		reportDelay(b, res)
	}
}

func reportTraffic(b *testing.B, res *experiment.NetworkResult) {
	b.Helper()
	byName := make(map[string]experiment.NetworkRow, len(res.Rows))
	for _, row := range res.Rows {
		byName[row.Strategy] = row
	}
	base := float64(byName["no-Adv-no-Cov"].Traffic)
	b.ReportMetric(base, "msgsBase")
	b.ReportMetric(100*float64(byName["with-Adv-no-Cov"].Traffic)/base, "advTraffic%")
	b.ReportMetric(100*float64(byName["with-Adv-with-Cov"].Traffic)/base, "advCovTraffic%")
	b.ReportMetric(byName["no-Adv-no-Cov"].DelayMs, "noCovDelayMs")
	b.ReportMetric(byName["with-Adv-with-Cov"].DelayMs, "covDelayMs")
}

func reportDelay(b *testing.B, res *experiment.DelayResult) {
	b.Helper()
	for _, s := range res.Series {
		if s.DocBytes != res.Series[0].DocBytes {
			continue
		}
		suffix := "noCov"
		if s.Covering {
			suffix = "cov"
		}
		b.ReportMetric(s.DelayMs[len(s.DelayMs)-1], "hop6-"+suffix+"Ms")
	}
}

func reduction(after, before int) float64 {
	if before == 0 {
		return 0
	}
	return 100 * (1 - float64(after)/float64(before))
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	total := 0.0
	for _, v := range xs {
		total += v
	}
	return total / float64(len(xs))
}
