package xmlrouter

// This file measures what the publication log (DESIGN.md §5i) costs and
// what group commit buys: append throughput with one fsync per record
// versus fsync batching on an interval, and sequential replay bandwidth.
// TestEmitPublogBench writes BENCH_publog.json.

import (
	"encoding/json"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/publog"
)

// publogDirBytes sums the log directory's file sizes.
func publogDirBytes(t testing.TB, dir string) int64 {
	t.Helper()
	var total int64
	err := filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			info, err := d.Info()
			if err != nil {
				return err
			}
			total += info.Size()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return total
}

// publogAppendRate appends n records under the given durability options and
// returns records/sec and bytes written. Close is inside the timed window:
// group commit only counts as durable once the final flush+fsync lands.
func publogAppendRate(t testing.TB, opts publog.Options, n int) (recsPerSec float64, bytes int64) {
	t.Helper()
	dir := t.TempDir()
	s, err := publog.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := s.Append("bench", uint64(i+1), wireBenchMessage(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	return float64(n) / elapsed.Seconds(), publogDirBytes(t, dir)
}

// publogReplayRate builds a log of n records and measures a full replay,
// returning MB/s over the on-disk byte volume and the record count/sec.
func publogReplayRate(t testing.TB, n int) (mbPerSec, recsPerSec float64) {
	t.Helper()
	dir := t.TempDir()
	s, err := publog.Open(dir, publog.Options{SyncAppend: true, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < n; i++ {
		if err := s.Append("bench", uint64(i+1), wireBenchMessage(i)); err != nil {
			t.Fatal(err)
		}
	}
	bytes := publogDirBytes(t, dir)
	start := time.Now()
	got := 0
	err = s.Replay("bench", 1, uint64(n), func(seq uint64, m *broker.Message) error {
		got++
		return nil
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("replayed %d records, want %d", got, n)
	}
	return float64(bytes) / (1 << 20) / elapsed.Seconds(), float64(n) / elapsed.Seconds()
}

func TestEmitPublogBench(t *testing.T) {
	out := os.Getenv("BENCH_PUBLOG_OUT")
	if out == "" {
		t.Skip("BENCH_PUBLOG_OUT not set")
	}
	const (
		appendN = 20000
		replayN = 50000
		rounds  = 3 // best-of, to shed scheduler and page-cache noise
	)

	var singleRate, groupRate float64
	var groupBytes int64
	for r := 0; r < rounds; r++ {
		// One fsync per append: the no-batching baseline.
		if rate, _ := publogAppendRate(t, publog.Options{SyncAppend: true}, appendN); rate > singleRate {
			singleRate = rate
		}
		// Group commit on a 5ms cadence — the default broker configuration.
		if rate, b := publogAppendRate(t, publog.Options{FsyncInterval: 5 * time.Millisecond}, appendN); rate > groupRate {
			groupRate, groupBytes = rate, b
		}
	}
	speedup := groupRate / singleRate
	// The design target: batching fsyncs buys ≥5x over one fsync per
	// record (measured runs land far above — a failure here means group
	// commit degenerated to per-record fsync).
	if speedup < 5 {
		t.Errorf("group-commit/single-fsync append throughput = %.2fx, want at least 5x (%.0f vs %.0f recs/s)",
			speedup, groupRate, singleRate)
	}

	var replayMB, replayRecs float64
	for r := 0; r < rounds; r++ {
		if mb, recs := publogReplayRate(t, replayN); mb > replayMB {
			replayMB, replayRecs = mb, recs
		}
	}

	doc := struct {
		Benchmark       string  `json:"benchmark"`
		AppendRecords   int     `json:"append_records"`
		SingleFsyncRate float64 `json:"single_fsync_appends_per_sec"`
		GroupCommitRate float64 `json:"group_commit_appends_per_sec"`
		Speedup         float64 `json:"group_commit_vs_single_fsync_speedup"`
		BytesPerRecord  float64 `json:"bytes_per_record"`
		ReplayRecords   int     `json:"replay_records"`
		ReplayMBPerSec  float64 `json:"replay_mb_per_sec"`
		ReplayRecsSec   float64 `json:"replay_records_per_sec"`
	}{
		Benchmark:       "publication log append throughput (fsync per record vs 5ms group commit) and replay bandwidth (DESIGN.md §5i)",
		AppendRecords:   appendN,
		SingleFsyncRate: singleRate,
		GroupCommitRate: groupRate,
		Speedup:         speedup,
		BytesPerRecord:  float64(groupBytes) / appendN,
		ReplayRecords:   replayN,
		ReplayMBPerSec:  replayMB,
		ReplayRecsSec:   replayRecs,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (group commit %.1fx single fsync, replay %.0f MB/s)", out, speedup, replayMB)
}
