package xmlrouter

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/transport"
	"repro/internal/wirefmt"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// This file measures what the binary wire protocol (DESIGN.md §5h) buys on
// a real 3-broker TCP chain at saturation: messages per second end to end,
// bytes per message on the broker-broker links, and allocations per
// encode/decode — gob versus binary, batched versus unbatched.
// TestEmitWireBench writes BENCH_wire.json.

// wireChain boots pub→b1→b2→b3→sub over loopback TCP with the given wire
// options on every broker, returning the servers and their listen addresses.
func wireChain(t testing.TB, opts transport.Options) ([]*transport.Server, []string) {
	t.Helper()
	const n = 3
	addrs := make([]string, n)
	servers := make([]*transport.Server, n)
	neighbors := make([]map[string]string, n)
	for i := range servers {
		neighbors[i] = make(map[string]string)
	}
	for i := range servers {
		cfg := broker.Config{}
		cfg.ID = fmt.Sprintf("b%d", i+1)
		servers[i] = transport.NewServerOptions(cfg, neighbors[i], opts)
		addr, err := servers[i].Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
		t.Cleanup(servers[i].Close)
	}
	for i := range servers {
		if i > 0 {
			neighbors[i][fmt.Sprintf("b%d", i)] = addrs[i-1]
			servers[i].Broker().AddNeighbor(fmt.Sprintf("b%d", i))
		}
		if i < n-1 {
			neighbors[i][fmt.Sprintf("b%d", i+2)] = addrs[i+1]
			servers[i].Broker().AddNeighbor(fmt.Sprintf("b%d", i+2))
		}
	}
	return servers, addrs
}

func wireWaitFor(t testing.TB, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// wireBenchMessage is the publication the chain is saturated with: a
// realistic path publication with attributes, heavy enough that the codec
// matters and small enough that thousands per second is the normal regime.
func wireBenchMessage(i int) *broker.Message {
	return &broker.Message{
		Type: broker.MsgPublish,
		Pub: xmldoc.Publication{
			DocID: uint64(i),
			Path:  []string{"stock", "exchange", "quote", "trade", "price"},
			Attrs: []map[string]string{
				nil,
				{"mic": "XNYS", "tz": "America/New_York"},
				{"symbol": "ACME", "currency": "USD"},
				{"size": "100", "venue": "XNYS"},
				nil,
			},
		},
	}
}

// chainThroughput saturates one chain configuration with msgs publications
// and returns end-to-end messages/sec and mean bytes/message on the two
// broker-broker hops. Several concurrent publishers keep the ingress broker's
// send queue full so the broker-broker links — where the codec and batching
// live — are the measured path, not one client's synchronous write loop.
func chainThroughput(t testing.TB, opts transport.Options, msgs int) (msgsPerSec, bytesPerMsg, batchP50 float64) {
	t.Helper()
	const pubs = 4
	servers, addrs := wireChain(t, opts)

	sub, err := transport.Dial(addrs[2], "sub")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Send(&broker.Message{Type: broker.MsgSubscribe, XPE: xpath.MustParse("/stock//price")}); err != nil {
		t.Fatal(err)
	}
	wireWaitFor(t, func() bool { return servers[0].PRTSize() == 1 })

	pub := make([]*transport.Client, pubs)
	for p := range pub {
		c, err := transport.Dial(addrs[0], fmt.Sprintf("pub%d", p))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		pub[p] = c
		// Warm each publisher's path end to end (dial, dictionary, matcher).
		if err := c.Send(wireBenchMessage(0)); err != nil {
			t.Fatal(err)
		}
		if _, err := sub.WaitDelivery(10 * time.Second); err != nil {
			t.Fatal(err)
		}
	}

	txBefore := chainTxBytes(servers)
	done := make(chan error, 1)
	go func() {
		for i := 0; i < msgs; i++ {
			if _, err := sub.WaitDelivery(10 * time.Second); err != nil {
				done <- fmt.Errorf("delivery %d: %w", i, err)
				return
			}
		}
		done <- nil
	}()

	start := time.Now()
	pubErr := make(chan error, pubs)
	for p := 0; p < pubs; p++ {
		go func(p int) {
			for i := p; i < msgs; i += pubs {
				if err := pub[p].Send(wireBenchMessage(i + 1)); err != nil {
					pubErr <- err
					return
				}
			}
			pubErr <- nil
		}(p)
	}
	for p := 0; p < pubs; p++ {
		if err := <-pubErr; err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)

	for _, ls := range servers[0].Links() {
		if ls.Up && ls.BatchP50 > batchP50 {
			batchP50 = ls.BatchP50
		}
	}
	msgsPerSec = float64(msgs) / elapsed.Seconds()
	// Each publication crosses two broker-broker links (b1→b2, b2→b3);
	// heartbeat and control noise over the run is negligible against
	// thousands of publications.
	bytesPerMsg = float64(chainTxBytes(servers)-txBefore) / (2 * float64(msgs))
	return msgsPerSec, bytesPerMsg, batchP50
}

// chainTxBytes sums outbound bytes over every live broker-broker link.
func chainTxBytes(servers []*transport.Server) int64 {
	var total int64
	for _, s := range servers {
		for _, ls := range s.Links() {
			total += ls.TxBytes
		}
	}
	return total
}

// codecAllocs measures steady-state allocations per encode and per decode
// for one codec over the benchmark publication. Both codecs keep their
// encoder/decoder for the whole connection, so the steady state is the
// second and later message on a warm stream.
func codecAllocs(t testing.TB, wire string, m *broker.Message) (encAllocs, decAllocs float64) {
	t.Helper()
	const runs = 100
	if wire == transport.WireBinary {
		enc := wirefmt.NewEncoder(io.Discard, wirefmt.DefaultLimits)
		if err := enc.Encode(m); err != nil { // warm the dictionary
			t.Fatal(err)
		}
		encAllocs = testing.AllocsPerRun(runs, func() {
			if err := enc.Encode(m); err != nil {
				t.Fatal(err)
			}
		})

		var warm, frame bytes.Buffer
		senc := wirefmt.NewEncoder(io.MultiWriter(&warm, &frame), wirefmt.DefaultLimits)
		if err := senc.Encode(m); err != nil {
			t.Fatal(err)
		}
		frame.Reset()
		if err := senc.Encode(m); err != nil {
			t.Fatal(err)
		}
		dec := wirefmt.NewDecoder(&warm, wirefmt.DefaultLimits)
		var got broker.Message
		for i := 0; i < 2; i++ {
			if err := dec.Decode(&got); err != nil {
				t.Fatal(err)
			}
		}
		steady := frame.Bytes()
		r := bytes.NewReader(nil)
		decAllocs = testing.AllocsPerRun(runs, func() {
			r.Reset(steady)
			dec.Reset(r)
			if err := dec.Decode(&got); err != nil {
				t.Fatal(err)
			}
		})
		return encAllocs, decAllocs
	}

	genc := gob.NewEncoder(io.Discard)
	if err := genc.Encode(m); err != nil { // warm the type descriptors
		t.Fatal(err)
	}
	encAllocs = testing.AllocsPerRun(runs, func() {
		if err := genc.Encode(m); err != nil {
			t.Fatal(err)
		}
	})

	var stream bytes.Buffer
	senc := gob.NewEncoder(&stream)
	for i := 0; i < runs+10; i++ {
		if err := senc.Encode(m); err != nil {
			t.Fatal(err)
		}
	}
	gdec := gob.NewDecoder(&stream)
	var got broker.Message
	if err := gdec.Decode(&got); err != nil {
		t.Fatal(err)
	}
	decAllocs = testing.AllocsPerRun(runs, func() {
		got = broker.Message{}
		if err := gdec.Decode(&got); err != nil {
			t.Fatal(err)
		}
	})
	return encAllocs, decAllocs
}

func TestEmitWireBench(t *testing.T) {
	out := os.Getenv("BENCH_WIRE_OUT")
	if out == "" {
		t.Skip("BENCH_WIRE_OUT not set")
	}
	const (
		msgs   = 20000
		rounds = 3 // best-of, to shed scheduler and GC noise
	)

	type config struct {
		Name       string  `json:"name"`
		Wire       string  `json:"wire"`
		Batched    bool    `json:"batched"`
		MsgsPerSec float64 `json:"msgs_per_sec"`
		BytesPer   float64 `json:"bytes_per_msg"`
		BatchP50   float64 `json:"batch_p50"`
	}
	configs := []struct {
		name string
		opts transport.Options
	}{
		{"gob", transport.Options{Wire: transport.WireGob}},
		{"binary-unbatched", transport.Options{Wire: transport.WireBinary, MaxBatchFrames: 1}},
		{"binary-batched", transport.Options{Wire: transport.WireBinary, MaxBatchFrames: 512, MaxBatchBytes: 1 << 20}},
	}
	var results []config
	for _, c := range configs {
		best := config{
			Name:    c.name,
			Wire:    c.opts.Wire,
			Batched: c.opts.Wire == transport.WireBinary && c.opts.MaxBatchFrames != 1,
		}
		for r := 0; r < rounds; r++ {
			mps, bpm, b50 := chainThroughput(t, c.opts, msgs)
			if mps > best.MsgsPerSec {
				best.MsgsPerSec, best.BytesPer, best.BatchP50 = mps, bpm, b50
			}
		}
		results = append(results, best)
		t.Logf("%s: %.0f msgs/s, %.0f bytes/msg, batch p50 %.0f", c.name, best.MsgsPerSec, best.BytesPer, best.BatchP50)
	}

	gobEnc, gobDec := codecAllocs(t, transport.WireGob, wireBenchMessage(1))
	binEnc, binDec := codecAllocs(t, transport.WireBinary, wireBenchMessage(1))
	// A path-only publication (the routing hot path) must decode with ZERO
	// heap traffic; the attr-carrying variant is allowed exactly one string
	// copy per inline attribute value (6 in the benchmark message) — those
	// strings escape into the broker and cannot alias the reused frame
	// buffer. Attribute NAMES are dictionary symbols and stay free.
	pathOnly := wireBenchMessage(1)
	pathOnly.Pub.Attrs = nil
	binEncPath, binDecPath := codecAllocs(t, transport.WireBinary, pathOnly)
	if binEnc != 0 || binEncPath != 0 || binDecPath != 0 {
		t.Errorf("binary codec allocates at steady state: encode %.1f/%.1f, path-only decode %.1f allocs/op (want 0)",
			binEnc, binEncPath, binDecPath)
	}
	if binDec > 6 {
		t.Errorf("attr-carrying decode = %.1f allocs/op, want at most the 6 value-string copies", binDec)
	}

	// The tentpole targets ≥2x messages/sec over gob at saturation; the
	// test enforces a soft 1.5x floor so CI noise cannot flake it while a
	// real regression (batching broken, codec slower than gob) still fails.
	speedup := results[2].MsgsPerSec / results[0].MsgsPerSec
	if speedup < 1.5 {
		t.Errorf("binary-batched/gob throughput = %.2fx, want well above 1.5x (%.0f vs %.0f msgs/s)",
			speedup, results[2].MsgsPerSec, results[0].MsgsPerSec)
	}

	doc := struct {
		Benchmark string   `json:"benchmark"`
		Messages  int      `json:"messages"`
		Configs   []config `json:"configs"`
		Allocs    struct {
			GobEncode           float64 `json:"gob_encode"`
			GobDecode           float64 `json:"gob_decode"`
			BinaryEncode        float64 `json:"binary_encode"`
			BinaryDecode        float64 `json:"binary_decode"`
			BinaryDecodePathMsg float64 `json:"binary_decode_path_only"`
		} `json:"allocs_per_op"`
		Speedup float64 `json:"batched_binary_vs_gob_speedup"`
	}{
		Benchmark: "3-broker chain saturation, gob vs binary wire, batched vs unbatched (DESIGN.md §5h)",
		Messages:  msgs,
		Configs:   results,
		Speedup:   speedup,
	}
	doc.Allocs.GobEncode = gobEnc
	doc.Allocs.GobDecode = gobDec
	doc.Allocs.BinaryEncode = binEnc
	doc.Allocs.BinaryDecode = binDec
	doc.Allocs.BinaryDecodePathMsg = binDecPath

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (batched binary %.1fx gob)", out, speedup)
}
