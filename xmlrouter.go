// Package xmlrouter is the public API of the XML/XPath content-based
// routing library, a reproduction of "Routing of XML and XPath Queries in
// Data Dissemination Networks" (Li, Hou, Jacobsen — ICDCS 2008).
//
// The library routes XML documents from producers to consumers across an
// overlay of content-based routers. Producers are described by DTDs, from
// which the system derives advertisements; consumers register XPath
// subscriptions; brokers keep routing state compact with covering and
// merging optimisations.
//
// Three layers are exposed:
//
//   - algorithms: XPath expressions (ParseXPE), advertisements
//     (GenerateAdvertisements, ParseAdvertisement), covering (Covers), and
//     merging (MergeSubscriptions);
//   - a deterministic discrete-event overlay simulator (NewNetwork,
//     BuildCompleteBinaryTree, BuildChain) for experiments;
//   - a TCP deployment (NewBrokerServer, DialBroker) for real networks.
//
// See the examples directory for runnable scenarios, and DESIGN.md /
// EXPERIMENTS.md for the reproduction methodology.
package xmlrouter

import (
	"repro/internal/advert"
	"repro/internal/broker"
	"repro/internal/cover"
	"repro/internal/dtd"
	"repro/internal/dtddata"
	"repro/internal/gen"
	"repro/internal/merge"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// Core data types.
type (
	// XPE is a parsed XPath expression (the subscription language: "/",
	// "//", "*" over element names).
	XPE = xpath.XPE
	// Step is one location step of an XPE.
	Step = xpath.Step
	// Pred is an attribute predicate on a step ("[@name='value']").
	Pred = xpath.Pred
	// Advertisement is an absolute path pattern derived from a producer
	// DTD, possibly with recursive "(...)+" groups.
	Advertisement = advert.Advertisement
	// DTD is a parsed document type definition.
	DTD = dtd.DTD
	// Document is an XML document.
	Document = xmldoc.Document
	// Publication is one root-to-leaf path of a document, the routing unit.
	Publication = xmldoc.Publication
	// Message is the broker protocol unit.
	Message = broker.Message
	// Broker is a content-based XML router.
	Broker = broker.Broker
	// BrokerConfig selects a broker's routing strategy.
	BrokerConfig = broker.Config
	// Network is the deterministic overlay simulator.
	Network = sim.Network
	// SimClient is a publisher/subscriber in the simulator.
	SimClient = sim.Client
	// BrokerServer hosts a broker over TCP.
	BrokerServer = transport.Server
	// NetClient is a publisher/subscriber endpoint over TCP.
	NetClient = transport.Client
	// Merger is the outcome of a subscription merge.
	Merger = merge.Merger
	// XPathGenerator produces random subscription workloads from a DTD.
	XPathGenerator = gen.XPathGenerator
	// DocGenerator produces documents conforming to a DTD.
	DocGenerator = gen.DocGenerator
)

// Message types.
const (
	MsgAdvertise   = broker.MsgAdvertise
	MsgUnadvertise = broker.MsgUnadvertise
	MsgSubscribe   = broker.MsgSubscribe
	MsgUnsubscribe = broker.MsgUnsubscribe
	MsgPublish     = broker.MsgPublish
)

// Merging modes.
const (
	MergeOff       = broker.MergeOff
	MergePerfect   = broker.MergePerfect
	MergeImperfect = broker.MergeImperfect
)

// ParseXPE parses an XPath expression of the supported fragment, e.g.
// "/nitf/body//p", "*/quote", or "/claim[@lang='en']//detail".
func ParseXPE(s string) (*XPE, error) { return xpath.Parse(s) }

// MustParseXPE is ParseXPE for statically known expressions.
func MustParseXPE(s string) *XPE { return xpath.MustParse(s) }

// ParseDTD parses DTD text.
func ParseDTD(text string) (*DTD, error) { return dtd.Parse(text) }

// ParseDocument parses an XML document.
func ParseDocument(data []byte) (*Document, error) { return xmldoc.Parse(data) }

// ExtractPublications decomposes a document into its publications.
func ExtractPublications(d *Document, docID uint64) []Publication {
	return xmldoc.Extract(d, docID)
}

// ParseAdvertisement parses the internal advertisement notation, e.g.
// "/a/*(/e/d)+/c".
func ParseAdvertisement(s string) (*Advertisement, error) { return advert.Parse(s) }

// GenerateAdvertisements derives the complete advertisement set from a
// producer DTD.
func GenerateAdvertisements(d *DTD) ([]*Advertisement, error) { return advert.Generate(d) }

// Covers reports whether subscription s1 covers s2 (every publication
// matching s2 matches s1).
func Covers(s1, s2 *XPE) bool { return cover.Covers(s1, s2) }

// Overlaps reports whether an advertisement's publication set intersects a
// subscription's — the forwarding condition of advertisement-based routing.
func Overlaps(a *Advertisement, s *XPE) bool { return a.Overlaps(s) }

// MergeSubscriptions merges same-shape subscriptions by generalising up to
// one differing element test and optionally one operator (the paper's rules
// 1 and 2); ok is false when the inputs do not qualify.
func MergeSubscriptions(xpes []*XPE, allowOperatorDiff bool) (merged *XPE, ok bool) {
	maxOp := 0
	if allowOperatorDiff {
		maxOp = 1
	}
	m, _, ok := merge.MergePositionwise(xpes, 1, maxOp)
	return m, ok
}

// NITF returns the embedded recursive news-article DTD used by the
// evaluation.
func NITF() *DTD { return dtddata.NITF() }

// PSD returns the embedded non-recursive protein-database DTD used by the
// evaluation.
func PSD() *DTD { return dtddata.PSD() }

// NewNetwork creates an empty simulated overlay.
func NewNetwork(seed int64) *Network { return sim.NewNetwork(seed) }

// BuildCompleteBinaryTree builds the paper's binary-tree topology and
// returns the leaf broker IDs.
func BuildCompleteBinaryTree(n *Network, levels int, cfg BrokerConfig) []string {
	return sim.BuildCompleteBinaryTree(n, levels, sim.ConfigTemplate(cfg))
}

// BuildChain builds a linear broker chain and returns the broker IDs.
func BuildChain(n *Network, length int, cfg BrokerConfig) []string {
	return sim.BuildChain(n, length, sim.ConfigTemplate(cfg))
}

// NewBrokerServer creates a TCP broker; neighbors maps neighbouring broker
// IDs to addresses.
func NewBrokerServer(cfg BrokerConfig, neighbors map[string]string) *BrokerServer {
	return transport.NewServer(cfg, neighbors)
}

// DialBroker connects a client to a TCP broker.
func DialBroker(addr, id string) (*NetClient, error) { return transport.Dial(addr, id) }

// NewXPathGenerator returns a subscription-workload generator with
// wildcard probability w and descendant probability do.
func NewXPathGenerator(d *DTD, w, do float64, seed int64) *XPathGenerator {
	return gen.NewXPathGenerator(d, w, do, seed)
}

// NewDocGenerator returns a document generator for the DTD.
func NewDocGenerator(d *DTD, seed int64) *DocGenerator { return gen.NewDocGenerator(d, seed) }
